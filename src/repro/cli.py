"""Command-line front end: reduce a netlist from the shell.

::

    python -m repro reduce input.sp --order 20 --out reduced.sp \
        --model model.npz --band 1e7 1e10

    python -m repro reduce input.sp --order 20 --robust \
        --max-retries 5 --fallback arnoldi --diagnostics diag.json

    python -m repro sweep input.sp --order 20 --band 1e7 1e10 \
        --points 400 --workers 4 --cache-dir ~/.cache/repro-engine \
        --exact --stats-json stats.json

    python -m repro cache stats
    python -m repro cache clear

    python -m repro serve --http-port 8080 --cache-dir ~/.cache/repro-engine

    python -m repro info input.sp

    python -m repro fit measured.s2p --poles 24 --domain Z \
        --enforce-passivity --model fitted.npz --spice fitted.sp

    python -m repro touchstone info measured.s2p
    python -m repro touchstone convert measured.s2p out.s2p --format RI
    python -m repro touchstone export input.sp out.s2p \
        --band 1e7 1e10 --points 200 --parameter Z

``sweep`` runs the compiled evaluation engine
(:mod:`repro.engine`): the reduction is cached by content address
(repeats are near-free with ``--cache-dir``), the model is compiled
once to pole-residue form, and the band is evaluated as a batched
broadcast sum; ``--exact`` adds the direct-solve reference sweep,
fanned out over ``--workers`` processes.  ``cache`` inspects or clears
the persistent reduction store.

``serve`` runs the long-lived macromodel service
(:mod:`repro.service`): a stdio-JSONL request loop (plus an optional
localhost HTTP/JSON front) with single-flight dedup, per-request
deadlines, bounded retries, admission control, and a circuit-breaker
guarded degradation ladder -- see ``docs/SERVICE.md``.

``reduce`` parses the SPICE-subset netlist, assembles the symmetric
MNA system, runs SyMPVL, reports band accuracy against the exact
response, and optionally writes a synthesized RC netlist (``--out``)
and/or a serialized model (``--model``).  With ``--robust`` the
reduction runs under the recovery engine
(:func:`repro.robustness.robust_reduce`): Lanczos breakdowns, singular
factorizations, and failed passivity certificates are repaired
automatically and every attempt is logged; ``--diagnostics`` dumps the
full health / recovery report as JSON (on failure too).

``fit`` runs the other direction: instead of reducing circuit
equations it vector-fits a *tabulated* frequency sweep (a Touchstone
``.sNp`` file) to a stable pole-residue macromodel
(:mod:`repro.fitting`), optionally enforces passivity, and writes the
same artifacts as ``reduce`` (a serialized ``.npz`` model, a
synthesized SPICE netlist).  ``touchstone`` inspects, re-formats, and
produces ``.sNp`` files (``export`` sweeps a netlist exactly and
tabulates the result).

Exit codes (documented in ``docs/ROBUSTNESS.md``)::

    0  success
    1  other repro error
    2  netlist parse / circuit error (argparse usage errors also exit 2)
    3  reduction error (breakdown, recovery exhausted)
    4  synthesis error
    5  factorization error
    6  simulation error
    7  I/O error (missing file, unwritable output)
    8  fitting error (vector fit failed, malformed Touchstone file)
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.analysis import Table
from repro.backends import BACKEND_NAMES, DTYPE_NAMES
from repro.circuits import assemble_mna, parse_netlist, write_netlist
from repro.circuits.validate import validate_netlist
from repro.core import certify, sympvl
from repro.linalg.factorization import FACTORIZATION_METHODS
from repro.core.model import ReducedOrderModel
from repro.errors import (
    EXIT_LABELS,
    ReproError,
    exit_code_for,
)
from repro.io import save_model
from repro.simulation import ac_sweep, model_sweep
from repro.synthesis import synthesize_rc

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SyMPVL matrix-Pade reduced-order modeling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="print netlist statistics")
    info.add_argument("netlist", help="SPICE-subset netlist file")

    reduce_cmd = sub.add_parser("reduce", help="reduce a netlist with SyMPVL")
    reduce_cmd.add_argument("netlist", help="SPICE-subset netlist file")
    reduce_cmd.add_argument("--order", type=int, required=True,
                            help="reduced order n (>= port count)")
    reduce_cmd.add_argument("--shift", default="auto",
                            help="expansion point sigma0 (default: auto)")
    reduce_cmd.add_argument("--band", nargs=2, type=float,
                            metavar=("W_LO", "W_HI"),
                            help="report accuracy over [w_lo, w_hi] rad/s")
    reduce_cmd.add_argument("--points", type=int, default=40,
                            help="frequency points for the accuracy report")
    reduce_cmd.add_argument("--out", help="write synthesized RC netlist here")
    reduce_cmd.add_argument("--model", help="write serialized model (.npz)")
    reduce_cmd.add_argument("--prune-tol", type=float, default=0.0,
                            help="relative pruning threshold for synthesis")
    reduce_cmd.add_argument("--no-validate", action="store_true",
                            help="skip the passivity/topology validation")
    reduce_cmd.add_argument(
        "--robust", action="store_true",
        help="run under the recovery engine (retry breakdowns, "
        "regularize singular shifts, back off the order, fall back "
        "to another reduction engine)")
    reduce_cmd.add_argument(
        "--max-retries", type=int, default=5, metavar="N",
        help="recovery attempts after the initial one (default 5)")
    reduce_cmd.add_argument(
        "--fallback", choices=["sypvl", "arnoldi", "none"],
        default="arnoldi",
        help="last-resort engine for --robust (default arnoldi)")
    reduce_cmd.add_argument(
        "--diagnostics", metavar="PATH",
        help="write the health/recovery report as JSON (also on failure)")
    reduce_cmd.add_argument(
        "--factorization", default="auto", metavar="METHOD",
        choices=FACTORIZATION_METHODS,
        help="G = M J M^T backend, one of "
        f"{', '.join(FACTORIZATION_METHODS)} (default auto; the "
        "REPRO_FACTORIZATION environment variable overrides auto)")
    # deterministic fault injection; for the robustness test harness
    reduce_cmd.add_argument("--inject-fault", help=argparse.SUPPRESS)

    sweep = sub.add_parser(
        "sweep",
        help="reduce (cache-aware) and sweep a netlist with the "
        "compiled evaluation engine",
    )
    sweep.add_argument("netlist", help="SPICE-subset netlist file")
    sweep.add_argument("--order", type=int, required=True,
                       help="reduced order n (>= port count)")
    sweep.add_argument("--engine", choices=["sympvl", "sypvl", "arnoldi"],
                       default="sympvl", help="reduction engine")
    sweep.add_argument("--shift", default="auto",
                       help="expansion point sigma0 (default: auto)")
    sweep.add_argument("--band", nargs=2, type=float, required=True,
                       metavar=("W_LO", "W_HI"),
                       help="sweep band [w_lo, w_hi] rad/s (log-spaced)")
    sweep.add_argument("--points", type=int, default=200,
                       help="number of frequency points (default 200)")
    sweep.add_argument("--exact", action="store_true",
                       help="also run the exact reference sweep and "
                       "report the error (parallel over --workers)")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="process-pool width for exact sweeps "
                       "(default: REPRO_WORKERS env, then serial)")
    sweep.add_argument("--no-pool", action="store_true",
                       help="disable the persistent sweep pool (exact "
                       "sweeps fall back to a per-call pool; default: "
                       "REPRO_POOL_PERSISTENT env, then on)")
    sweep.add_argument("--pool-idle-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="idle seconds before the persistent pool "
                       "shuts down (default: REPRO_POOL_IDLE_TIMEOUT "
                       "env, then 120)")
    sweep.add_argument("--cache-dir", metavar="DIR",
                       help="persistent reduction cache directory "
                       "(default: in-memory only)")
    sweep.add_argument("--backend", choices=list(BACKEND_NAMES),
                       default=None,
                       help="array backend for compiled sweeps "
                       "(default: REPRO_BACKEND env, then numpy)")
    sweep.add_argument("--dtype", choices=list(DTYPE_NAMES), default=None,
                       help="evaluation precision; float32 is "
                       "probe-verified against float64 and falls back "
                       "on mismatch (default: REPRO_DTYPE env, then "
                       "float64)")
    sweep.add_argument("--stats-json", metavar="PATH",
                       help="write engine session metrics as JSON")
    sweep.add_argument(
        "--factorization", default="auto", metavar="METHOD",
        choices=FACTORIZATION_METHODS,
        help="G = M J M^T backend for sympvl/sypvl (default auto)")
    sweep.add_argument("--out", metavar="PATH",
                       help="write the swept |Z| magnitudes as CSV")

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk reduction cache"
    )
    cache.add_argument("action", choices=["stats", "clear"],
                       help="print counters / entry counts, or delete "
                       "every cached reduction")
    cache.add_argument("--cache-dir", metavar="DIR",
                       help="cache directory (default: REPRO_CACHE_DIR "
                       "env, then ~/.cache/repro-engine)")

    serve = sub.add_parser(
        "serve",
        help="run the resilient macromodel service (stdio-JSONL, "
        "optionally HTTP on localhost)",
    )
    serve.add_argument("--http-port", type=int, default=None, metavar="PORT",
                       help="also serve HTTP/JSON on 127.0.0.1:PORT "
                       "(0 picks a free port; default: stdio only)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="persistent reduction cache directory")
    serve.add_argument("--cache-max-bytes", type=int, default=None,
                       metavar="N", help="disk cache size budget (bytes)")
    serve.add_argument("--cache-ttl", type=float, default=None,
                       metavar="SECONDS", help="disk cache entry TTL")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="process-pool width for exact sweeps")
    serve.add_argument("--no-pool", action="store_true",
                       help="disable the persistent sweep pool (exact "
                       "sweeps fall back to a per-call pool)")
    serve.add_argument("--pool-idle-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="idle seconds before the persistent pool "
                       "shuts down (default: REPRO_POOL_IDLE_TIMEOUT "
                       "env, then 120)")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       metavar="MS",
                       help="micro-batching window: compiled sweeps "
                       "sharing a model fingerprint merge into one "
                       "broadcast evaluation; 0 disables (default 2)")
    serve.add_argument("--batch-max-size", type=int, default=16,
                       metavar="N",
                       help="requests per batch before an early flush "
                       "(default 16)")
    serve.add_argument("--backend", choices=list(BACKEND_NAMES),
                       default=None,
                       help="array backend for compiled sweeps "
                       "(default: REPRO_BACKEND env, then numpy)")
    serve.add_argument("--dtype", choices=list(DTYPE_NAMES), default=None,
                       help="evaluation precision for compiled sweeps "
                       "(default: REPRO_DTYPE env, then float64)")
    serve.add_argument("--max-pending", type=int, default=64, metavar="N",
                       help="admission queue bound; beyond it requests "
                       "are shed with 'overloaded' (default 64)")
    serve.add_argument("--max-concurrency", type=int, default=4, metavar="N",
                       help="simultaneously running requests (default 4)")
    serve.add_argument("--deadline", type=float, default=30.0,
                       metavar="SECONDS",
                       help="default per-request wall budget (default 30)")
    serve.add_argument("--retries", type=int, default=3, metavar="N",
                       help="total attempts for transient faults "
                       "(default 3)")
    # deterministic service fault injection; for the test harness
    serve.add_argument("--inject-fault", help=argparse.SUPPRESS)

    fit = sub.add_parser(
        "fit",
        help="vector-fit a tabulated Touchstone sweep to a stable "
        "pole-residue macromodel",
    )
    fit.add_argument("touchstone", help="input .sNp file (Touchstone v1)")
    fit.add_argument("--poles", type=int, default=None, metavar="N",
                     help="model order (default: chosen from the data)")
    fit.add_argument("--real-poles", type=int, default=0, metavar="N",
                     help="how many starting poles are real (default 0)")
    fit.add_argument("--iterations", type=int, default=30, metavar="N",
                     help="max pole-relocation iterations (default 30)")
    fit.add_argument("--tol", type=float, default=1e-10,
                     help="convergence tolerance on the max relative "
                     "fit error (default 1e-10)")
    fit.add_argument("--domain", choices=["S", "Y", "Z"], default=None,
                     help="fit in this parameter domain (default: the "
                     "file's own; conversion uses the reference "
                     "impedance)")
    fit.add_argument("--solver", choices=["fast", "naive"], default="fast",
                     help="LS solver: per-response QR compression or "
                     "the monolithic reference (default fast)")
    fit.add_argument("--enforce-passivity", action="store_true",
                     help="perturb residues until the Hamiltonian / "
                     "half-size test reports a passive model")
    fit.add_argument("--model", metavar="PATH",
                     help="write the fitted model as .npz (io format v2)")
    fit.add_argument("--spice", metavar="PATH",
                     help="write a synthesized SPICE netlist "
                     "(generalized Foster, one driving-point entry)")
    fit.add_argument("--spice-port", metavar="NAME", default=None,
                     help="which port's driving-point entry --spice "
                     "synthesizes (default: only port; required for "
                     "multi-ports)")
    fit.add_argument("--report", metavar="PATH",
                     help="write the fit + passivity report as JSON")

    touchstone = sub.add_parser(
        "touchstone", help="inspect, convert, or produce .sNp files"
    )
    ts_sub = touchstone.add_subparsers(dest="ts_command", required=True)
    ts_info = ts_sub.add_parser("info", help="print file statistics")
    ts_info.add_argument("file", help=".sNp file")
    ts_convert = ts_sub.add_parser(
        "convert", help="rewrite with a different format/unit/parameter"
    )
    ts_convert.add_argument("file", help="input .sNp file")
    ts_convert.add_argument("out", help="output .sNp file")
    ts_convert.add_argument("--format", choices=["RI", "MA", "DB"],
                            default="RI", help="number format (default RI)")
    ts_convert.add_argument("--unit",
                            choices=["HZ", "KHZ", "MHZ", "GHZ"],
                            default="HZ", help="frequency unit (default HZ)")
    ts_convert.add_argument("--parameter", choices=["S", "Y", "Z"],
                            default=None,
                            help="convert to this parameter domain "
                            "(default: keep the file's own)")
    ts_export = ts_sub.add_parser(
        "export", help="sweep a netlist exactly and tabulate it as .sNp"
    )
    ts_export.add_argument("netlist", help="SPICE-subset netlist file")
    ts_export.add_argument("out", help="output .sNp file (port count "
                           "must match the extension)")
    ts_export.add_argument("--band", nargs=2, type=float, required=True,
                           metavar=("W_LO", "W_HI"),
                           help="sweep band [w_lo, w_hi] rad/s (log-spaced)")
    ts_export.add_argument("--points", type=int, default=200,
                           help="number of frequency points (default 200)")
    ts_export.add_argument("--parameter", choices=["S", "Y", "Z"],
                           default="Z",
                           help="tabulated parameter domain (default Z)")
    ts_export.add_argument("--z0", type=float, default=50.0,
                           help="reference impedance in ohm (default 50)")
    ts_export.add_argument("--workers", type=int, default=None, metavar="N",
                           help="process-pool width for the exact sweep")

    generate = sub.add_parser(
        "generate", help="emit a synthetic benchmark circuit as a netlist"
    )
    generate.add_argument(
        "kind",
        choices=["rc-ladder", "rc-mesh", "rc-bus", "rlc-line", "package"],
        help="which generator to run",
    )
    generate.add_argument("--size", type=int, default=0,
                          help="primary size knob (sections/rows/wires/pins)")
    generate.add_argument("--out", required=True, help="output netlist path")
    return parser


def _cmd_info(args: argparse.Namespace) -> int:
    with open(args.netlist) as handle:
        net = parse_netlist(handle.read())
    stats = net.stats()
    table = Table(f"netlist {args.netlist}", ["quantity", "count"])
    for key, value in stats.items():
        table.row(key, value)
    table.row("kind", net.classify())
    table.print()
    return 0


def _write_diagnostics(path: str, payload: dict) -> None:
    from repro.robustness.health import _jsonify

    with open(path, "w") as handle:
        json.dump(_jsonify(payload), handle, indent=2, allow_nan=False)
        handle.write("\n")


def _reduce_model(args: argparse.Namespace, system, shift, fault_plan):
    """Run the reduction; returns (model, certification, diagnostics|None)."""
    from repro.robustness import HealthMonitor
    from repro.robustness.recovery import robust_reduce

    if args.robust:
        result = robust_reduce(
            system,
            args.order,
            shift=shift,
            max_retries=args.max_retries,
            fallback=args.fallback,
            fault_plan=fault_plan,
            factor_method=args.factorization,
        )
        report = result.report
        if report.recovered:
            repairs = [
                a.policy for a in report.attempts
                if a.succeeded and a.policy != "initial"
            ]
            print(f"recovered after {len(report.attempts)} attempts "
                  f"(repairs: {', '.join(repairs)})")
        return result.model, result.certification, result.diagnostics()

    # plain path: still monitored so --diagnostics works without --robust
    monitor = HealthMonitor()
    if fault_plan is not None:
        fault_plan.monitor = monitor

        def wrapper(op):
            return fault_plan.wrap_operator(op)

        from repro.linalg.factorization import factor_symmetric

        factor_fn = fault_plan.wrap_factor(factor_symmetric)
    else:
        wrapper = None
        factor_fn = None
    model = sympvl(
        system, order=args.order, shift=shift, monitor=monitor,
        factor_method=args.factorization,
        factor_fn=factor_fn, operator_wrapper=wrapper,
    )
    cert = certify(model, monitor=monitor)
    diagnostics = None
    if args.diagnostics:
        diagnostics = {
            "engine": "sympvl",
            "order": model.order,
            "requested_order": args.order,
            "certified": bool(cert.certified),
            "recovery": None,
            "fault_injection": (
                fault_plan.summary() if fault_plan is not None else None
            ),
            "health": monitor.report().to_dict(),
        }
    return model, cert, diagnostics


def _cmd_reduce(args: argparse.Namespace) -> int:
    from repro.robustness import FaultPlan

    with open(args.netlist) as handle:
        net = parse_netlist(handle.read())
    if not args.no_validate:
        validate_netlist(net)
    system = assemble_mna(net)
    shift = "auto" if args.shift == "auto" else float(args.shift)
    fault_plan = (
        FaultPlan.parse(args.inject_fault) if args.inject_fault else None
    )

    try:
        model, cert, diagnostics = _reduce_model(
            args, system, shift, fault_plan
        )
    except ReproError as exc:
        if args.diagnostics:
            report = getattr(exc, "report", None)
            _write_diagnostics(args.diagnostics, {
                "engine": None,
                "order": None,
                "requested_order": args.order,
                "certified": None,
                "error": f"{type(exc).__name__}: {exc}",
                "recovery": report.to_dict() if report is not None else None,
                "fault_injection": (
                    fault_plan.summary() if fault_plan is not None else None
                ),
            })
            print(f"diagnostics written to {args.diagnostics}",
                  file=sys.stderr)
        raise

    is_pade = isinstance(model, ReducedOrderModel)
    if is_pade:
        print(
            f"reduced {system.size} unknowns -> {model.order} states "
            f"(ports: {model.num_ports}, sigma0 = {model.sigma0:.4g}, "
            f"factorization: {model.factorization_method})"
        )
        print(f"stable: {model.is_stable()}, certified stable+passive: "
              f"{cert.certified}")
    else:
        print(
            f"reduced {system.size} unknowns -> {model.order} states "
            f"(ports: {model.num_ports}, engine: arnoldi congruence)"
        )
        print(f"stable: {model.is_stable()}, passive by construction")

    if args.band:
        w_lo, w_hi = args.band
        if not 0 < w_lo < w_hi:
            raise ReproError("--band needs 0 < w_lo < w_hi")
        s = 1j * np.logspace(np.log10(w_lo), np.log10(w_hi), args.points)
        exact = ac_sweep(system, s)
        reduced = model_sweep(model, s)
        from repro.analysis import frequency_error

        err = frequency_error(reduced, exact)
        print(f"band accuracy over [{w_lo:.3g}, {w_hi:.3g}] rad/s: "
              f"max rel {err['max_rel']:.3e}, RMS {err['rms_db']:.3e} dB")

    if args.model:
        if is_pade:
            save_model(model, args.model)
            print(f"model written to {args.model}")
        else:
            print("note: --model skipped (congruence fallback model has no "
                  ".npz serialization)", file=sys.stderr)
    if args.out:
        if is_pade:
            report = synthesize_rc(model, prune_tol=args.prune_tol)
            with open(args.out, "w") as handle:
                handle.write(write_netlist(report.netlist))
            print(report.summary())
            print(f"synthesized netlist written to {args.out}")
        else:
            print("note: --out skipped (synthesis needs a matrix-Pade "
                  "model, got the congruence fallback)", file=sys.stderr)
    if args.diagnostics and diagnostics is not None:
        _write_diagnostics(args.diagnostics, diagnostics)
        print(f"diagnostics written to {args.diagnostics}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine import Engine

    with open(args.netlist) as handle:
        net = parse_netlist(handle.read())
    system = assemble_mna(net)
    shift = "auto" if args.shift == "auto" else float(args.shift)
    w_lo, w_hi = args.band
    if not 0 < w_lo < w_hi:
        raise ReproError("--band needs 0 < w_lo < w_hi")
    s = 1j * np.logspace(np.log10(w_lo), np.log10(w_hi), args.points)

    if args.no_pool or args.pool_idle_timeout is not None:
        from repro.engine import pool as engine_pool

        engine_pool.configure(
            persistent=False if args.no_pool else None,
            idle_timeout=args.pool_idle_timeout,
        )
    engine = Engine(
        cache_dir=args.cache_dir, workers=args.workers,
        backend=args.backend, dtype=args.dtype,
    )
    if args.backend or args.dtype:
        stats = engine.stats()
        print(f"backend: {stats['backend']} (dtype {stats['dtype']})")
    reduce_options = {}
    if args.engine in ("sympvl", "sypvl") and args.factorization != "auto":
        reduce_options["factor_method"] = args.factorization
    model = engine.reduce(
        system, args.order, engine=args.engine, shift=shift,
        **reduce_options,
    )
    cache_stats = engine.cache.stats
    source = "cache" if cache_stats.hits else "fresh reduction"
    print(f"model: n = {model.order}, p = {model.num_ports} ({source})")

    compiled = engine.compile(model)
    print(f"compiled: mode = {compiled.mode}"
          + ("" if compiled.is_spectral
             else f" (fallback: {compiled.fallback_reason})"))
    reduced = engine.sweep(model, s)
    print(f"swept {args.points} points over [{w_lo:.3g}, {w_hi:.3g}] rad/s "
          f"(max |Z| = {float(np.abs(reduced.z).max()):.4g})")

    if args.exact:
        exact = engine.sweep(system, s, workers=args.workers)
        from repro.analysis import frequency_error

        err = frequency_error(reduced, exact)
        print(f"vs exact: max rel {err['max_rel']:.3e}, "
              f"RMS {err['rms_db']:.3e} dB")

    if args.out:
        header = "omega," + ",".join(
            f"|Z[{i},{j}]|"
            for i in range(model.num_ports)
            for j in range(model.num_ports)
        )
        mags = np.abs(reduced.z).reshape(args.points, -1)
        data = np.column_stack([s.imag, mags])
        np.savetxt(args.out, data, delimiter=",", header=header, comments="")
        print(f"sweep written to {args.out}")

    if args.stats_json:
        with open(args.stats_json, "w") as handle:
            json.dump(engine.stats(), handle, indent=2)
            handle.write("\n")
        print(f"engine stats written to {args.stats_json}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.engine import ReductionCache, default_cache_dir

    cache_dir = args.cache_dir or default_cache_dir()
    cache = ReductionCache(cache_dir=cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached reduction(s) from {cache_dir}")
        return 0
    info = cache.describe()
    table = Table(f"reduction cache {cache_dir}", ["quantity", "value"])
    for key in ("disk_entries", "disk_bytes", "memory_entries",
                "max_entries", "hits", "misses", "evictions"):
        table.row(key, info[key])
    table.print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import dataclasses

    from repro.robustness.faultinject import ServiceFaultPlan
    from repro.service import MacromodelService, ServiceConfig, serve_stdio
    from repro.service.config import RetryConfig
    from repro.service.http import serve_http

    if args.no_pool or args.pool_idle_timeout is not None:
        from repro.engine import pool as engine_pool

        engine_pool.configure(
            persistent=False if args.no_pool else None,
            idle_timeout=args.pool_idle_timeout,
        )
    try:
        config = ServiceConfig(
            max_pending=args.max_pending,
            max_concurrency=args.max_concurrency,
            default_deadline=args.deadline,
            cache_dir=args.cache_dir,
            cache_max_bytes=args.cache_max_bytes,
            cache_ttl=args.cache_ttl,
            workers=args.workers,
            backend=args.backend,
            dtype=args.dtype,
            retry=dataclasses.replace(RetryConfig(), attempts=args.retries),
            batch_window_ms=args.batch_window_ms,
            batch_max_size=args.batch_max_size,
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from None
    fault_plan = (
        ServiceFaultPlan.parse(args.inject_fault)
        if args.inject_fault else None
    )
    service = MacromodelService(config, fault_plan=fault_plan)

    async def run():
        http_server = None
        if args.http_port is not None:
            http_server = await serve_http(service, port=args.http_port)
            host, port = http_server.sockets[0].getsockname()[:2]
            print(f"http: listening on {host}:{port}", file=sys.stderr)
        print("stdio: one JSON request per line; EOF or a 'shutdown' "
              "request exits", file=sys.stderr)
        try:
            handled = await serve_stdio(service)
        finally:
            if http_server is not None:
                http_server.close()
                await http_server.wait_closed()
        print(f"served {handled} request(s); shutting down", file=sys.stderr)

    asyncio.run(run())
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from repro.fitting import (
        assess_passivity,
        enforce_model_passivity,
        fit_touchstone,
        read_touchstone,
    )

    data = read_touchstone(args.touchstone)
    print(f"read {args.touchstone}: {data.num_ports} port(s), "
          f"{data.num_points} points, "
          f"{data.frequency_hz.min():.4g}..{data.frequency_hz.max():.4g} Hz, "
          f"parameter {data.parameter} (z0 = {data.z0:g} ohm)")

    model = fit_touchstone(
        data,
        domain=args.domain,
        num_poles=args.poles,
        num_real=args.real_poles,
        iterations=args.iterations,
        tol=args.tol,
        solver=args.solver,
    )
    report = model.report
    print(f"fitted {model.order} poles ({model.num_real_poles} real) in "
          f"{report.iterations} iteration(s), domain {model.parameter}: "
          f"max rel error {report.error:.3e}"
          + ("" if report.converged else " (NOT converged)"))

    if args.enforce_passivity:
        model = enforce_model_passivity(model)
        passivity = model.metadata.get("passivity", {})
        print(f"passivity enforced ({passivity.get('method', '?')}): "
              f"passive = {passivity.get('passive')}, worst margin "
              f"{passivity.get('worst_margin', float('nan')):.3e}, "
              f"padding {passivity.get('padding', 0.0):.3e}, "
              f"distortion {passivity.get('distortion', 0.0):.3e}")
        from repro.analysis.compare import max_relative_error

        post_error = max_relative_error(
            model.matrices(data.s_values), data.in_domain(model.parameter)
        )
        print(f"max rel error vs the table after enforcement: "
              f"{post_error:.3e}")
        if post_error > max(100.0 * report.error, 1e-6):
            print("warning: enforcement significantly distorted the fit "
                  "(the violations were structural); consider more poles, "
                  "a wider tabulated band, or fitting lossier data",
                  file=sys.stderr)
    elif model.parameter in ("Z", "Y"):
        check = assess_passivity(model)
        print(f"passivity check ({check.method}): passive = {check.passive}"
              + ("" if check.passive else
                 f", worst margin {check.worst_margin:.3e} "
                 "(re-run with --enforce-passivity)"))

    if args.model:
        save_model(model, args.model)
        print(f"model written to {args.model}")
    if args.spice:
        from repro.synthesis import synthesize_fitted

        net = synthesize_fitted(model, port=args.spice_port)
        with open(args.spice, "w") as handle:
            handle.write(write_netlist(net))
        print(f"synthesized netlist written to {args.spice}")
    if args.report:
        payload = {
            "fit": report.as_dict(),
            "parameter": model.parameter,
            "z0": model.z0,
            "port_names": list(model.port_names),
            "passivity": model.metadata.get("passivity"),
        }
        with open(args.report, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"fit report written to {args.report}")
    return 0


def _cmd_touchstone(args: argparse.Namespace) -> int:
    from repro.fitting import TouchstoneData, read_touchstone, write_touchstone

    if args.ts_command == "info":
        data = read_touchstone(args.file)
        table = Table(f"touchstone {args.file}", ["quantity", "value"])
        table.row("ports", data.num_ports)
        table.row("points", data.num_points)
        table.row("parameter", data.parameter)
        table.row("z0 (ohm)", data.z0)
        table.row("f min (Hz)", f"{data.frequency_hz.min():.6g}")
        table.row("f max (Hz)", f"{data.frequency_hz.max():.6g}")
        table.row("comment lines", len(data.comments))
        table.print()
        return 0

    if args.ts_command == "convert":
        data = read_touchstone(args.file)
        if args.parameter and args.parameter != data.parameter:
            data = TouchstoneData(
                frequency_hz=data.frequency_hz,
                matrices=data.in_domain(args.parameter),
                parameter=args.parameter,
                z0=data.z0,
                port_names=list(data.port_names),
                comments=list(data.comments),
            )
        write_touchstone(args.out, data, fmt=args.format, unit=args.unit)
        print(f"wrote {data.num_points} points as {data.parameter} "
              f"{args.format} to {args.out}")
        return 0

    # export: exact netlist sweep -> tabulated .sNp
    from repro.engine import Engine

    with open(args.netlist) as handle:
        net = parse_netlist(handle.read())
    system = assemble_mna(net)
    w_lo, w_hi = args.band
    if not 0 < w_lo < w_hi:
        raise ReproError("--band needs 0 < w_lo < w_hi")
    s = 1j * np.logspace(np.log10(w_lo), np.log10(w_hi), args.points)
    engine = Engine(workers=args.workers)
    exact = engine.sweep(system, s, workers=args.workers)
    data = TouchstoneData(
        frequency_hz=s.imag / (2.0 * np.pi),
        matrices=exact.z if args.parameter == "Z"
        else TouchstoneData(
            frequency_hz=s.imag / (2.0 * np.pi),
            matrices=exact.z, parameter="Z", z0=args.z0,
        ).in_domain(args.parameter),
        parameter=args.parameter,
        z0=args.z0,
        port_names=list(exact.port_names),
        comments=[f"exact sweep of {args.netlist}"],
    )
    write_touchstone(args.out, data)
    print(f"swept {args.points} points "
          f"({data.num_ports} port(s)) -> {args.out}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.circuits import (
        coupled_rc_bus,
        package_model,
        rc_ladder,
        rc_mesh,
        rlc_line,
    )

    size = args.size
    if args.kind == "rc-ladder":
        net = rc_ladder(size or 100, port_at_far_end=True)
    elif args.kind == "rc-mesh":
        n = size or 10
        net = rc_mesh(n, n)
    elif args.kind == "rc-bus":
        net = coupled_rc_bus(size or 17, driver_resistance=100.0)
    elif args.kind == "rlc-line":
        net = rlc_line(size or 50)
    else:  # package
        net = package_model(n_pins=size or 64)
    with open(args.out, "w") as handle:
        handle.write(write_netlist(net))
    stats = net.stats()
    print(f"wrote {args.kind} ({stats['nodes']} nodes, "
          f"{len(net)} elements) to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a documented exit code (module docstring)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "reduce":
            return _cmd_reduce(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "fit":
            return _cmd_fit(args)
        if args.command == "touchstone":
            return _cmd_touchstone(args)
        if args.command == "generate":
            return _cmd_generate(args)
    except (ReproError, OSError) as exc:
        code = exit_code_for(exc)
        label = EXIT_LABELS.get(code, "error")
        message = str(exc).split("\n", 1)[0]
        print(f"error [{label}]: {message}", file=sys.stderr)
        return code
    return 2  # pragma: no cover - unreachable with required=True
