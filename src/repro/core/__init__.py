"""Core model-order-reduction algorithms (SyMPVL and baselines)."""

from repro.core.adaptive import AdaptiveResult, sympvl_adaptive
from repro.core.arnoldi import CongruenceModel, block_arnoldi_basis, prima
from repro.core.awe import AWEModel, awe
from repro.core.lanczos import (
    DeflationEvent,
    LanczosEngine,
    LanczosOptions,
    LanczosResult,
    symmetric_block_lanczos,
)
from repro.core.model import ReducedOrderModel, StateSpace
from repro.core.moments import exact_moments, moment_match_count
from repro.core.mpvl import mpvl
from repro.core.pact import pact
from repro.core.passivity import (
    Certification,
    certify,
    clamp_spectrum,
    enforce_passivity,
    positive_real_margin,
    stabilize,
)
from repro.core.sympvl import default_shift, resolve_shift, sympvl
from repro.core.sypvl import scalar_impedance, sypvl

__all__ = [
    "LanczosOptions",
    "LanczosResult",
    "LanczosEngine",
    "DeflationEvent",
    "symmetric_block_lanczos",
    "ReducedOrderModel",
    "StateSpace",
    "exact_moments",
    "moment_match_count",
    "sympvl",
    "sympvl_adaptive",
    "AdaptiveResult",
    "sypvl",
    "scalar_impedance",
    "default_shift",
    "resolve_shift",
    "awe",
    "AWEModel",
    "prima",
    "CongruenceModel",
    "block_arnoldi_basis",
    "mpvl",
    "pact",
    "Certification",
    "certify",
    "clamp_spectrum",
    "positive_real_margin",
    "stabilize",
    "enforce_passivity",
]
