"""Adaptive order selection for SyMPVL.

The paper picks reduction orders by inspection ("an approximation of
order n = 50 was needed...").  This driver automates that loop: it
grows the order in block steps and stops when the model has *converged
on the band of interest* -- successive models agreeing within a
tolerance is the standard practical convergence estimate for Pade-type
reductions (the true error is unavailable without the exact solve the
reduction is meant to avoid).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.mna import MNASystem
from repro.core.lanczos import LanczosEngine, LanczosOptions
from repro.core.model import ReducedOrderModel
from repro.core.sympvl import _enforce_psd, resolve_shift
from repro.errors import ReductionError
from repro.linalg.operators import LanczosOperator

__all__ = ["AdaptiveResult", "sympvl_adaptive"]


@dataclass
class AdaptiveResult:
    """Outcome of :func:`sympvl_adaptive`.

    ``history`` holds ``(order, change)`` pairs, where ``change`` is the
    relative deviation between that model and the previous one on the
    probe band (``inf`` for the first).
    """

    model: ReducedOrderModel
    converged: bool
    history: list[tuple[int, float]]

    @property
    def order(self) -> int:
        return self.model.order


def sympvl_adaptive(
    system: MNASystem,
    band: np.ndarray,
    *,
    tol: float = 1e-4,
    shift: float | str = "auto",
    max_order: int | None = None,
    step: int | None = None,
    points: int = 25,
    options: LanczosOptions | None = None,
) -> AdaptiveResult:
    """Grow the SyMPVL order until the model converges on ``band``.

    Parameters
    ----------
    system:
        Assembled MNA system.
    band:
        Angular-frequency interval ``[w_lo, w_hi]`` (rad/s) of interest;
        the convergence probe samples ``points`` frequencies
        logarithmically across it.
    tol:
        Stop when two successive models deviate by less than ``tol``
        (relative, globally normalized) on the probe.
    max_order:
        Upper bound on the order (default ``min(N, 40 p)``).
    step:
        Order increment (default: the port count ``p``, one block
        iteration at a time).

    Returns
    -------
    AdaptiveResult
        ``converged`` is False when ``max_order`` was reached first
        (the last model is still returned).

    Notes
    -----
    The driver pays one factorization and one incremental Krylov sweep
    total: refinements resume the :class:`LanczosEngine` instead of
    restarting it.
    """
    band = np.asarray(band, dtype=float)
    if band.size < 2 or band[0] <= 0 or band[-1] <= band[0]:
        raise ReductionError("band must be [w_lo, w_hi] with 0 < w_lo < w_hi")
    p = system.num_ports
    step = p if step is None else step
    if step < 1:
        raise ReductionError("step must be >= 1")
    max_order = max_order or min(system.size, 40 * p)
    probe = 1j * np.logspace(
        np.log10(band[0]), np.log10(band[-1]), points
    )

    sigma0, factorization = resolve_shift(system, shift)
    operator = LanczosOperator(factorization, system.C, system.B)
    engine = LanczosEngine(operator, options)
    guaranteed = (
        system.psd_guaranteed
        and factorization.j_is_identity
        and sigma0 >= 0.0
    )

    def build_model() -> ReducedOrderModel:
        result = engine.result()
        t_matrix = _enforce_psd(result.t) if guaranteed else result.t
        return ReducedOrderModel(
            t=t_matrix,
            delta=result.delta,
            rho=result.rho,
            sigma0=sigma0,
            transfer=system.transfer,
            port_names=list(system.port_names),
            source_size=system.size,
            guaranteed_stable_passive=guaranteed,
            factorization_method=factorization.method,
            metadata={
                "lanczos": result,
                "deflations": len(result.deflations),
                "exhausted": result.exhausted,
                "formulation": system.formulation,
            },
        )

    history: list[tuple[int, float]] = []
    previous_z: np.ndarray | None = None
    order = min(max(p, step), max_order)
    while True:
        engine.extend(order)
        model = build_model()
        z = model.impedance(probe)
        if previous_z is None:
            change = np.inf
        else:
            scale = max(float(np.abs(z).max()), 1e-300)
            change = float(np.abs(z - previous_z).max() / scale)
        history.append((model.order, change))
        if change <= tol:
            return AdaptiveResult(model=model, converged=True, history=history)
        if model.order >= max_order or engine.exhausted:
            converged = engine.exhausted or change <= tol
            return AdaptiveResult(
                model=model, converged=converged, history=history
            )
        previous_z = z
        order = min(order + step, max_order)
