"""Block-Arnoldi congruence reduction (PRIMA-style baseline, ref. [16]).

The alternative the paper cites: build an *orthonormal* basis ``V`` of
the block Krylov space of ``Ghat^{-1} C`` with starting block
``Ghat^{-1} B`` and reduce by congruence,

``Gr = V^T G V``, ``Cr = V^T C V``, ``Br = V^T B``,
``Z_n(sigma) = Br^T (Gr + sigma Cr)^{-1} Br``.

Congruence preserves positive semi-definiteness, so for PSD pencils the
reduced model is passive *by construction* -- but it matches only
``floor(n/p)`` moments, half of the matrix-Pade count of SyMPVL at the
same order.  Ablation ABL3 measures exactly this accuracy gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.circuits.mna import MNASystem, TransferMap
from repro.errors import FactorizationError, ReductionError
from repro.linalg.utils import checked_splu

__all__ = ["CongruenceModel", "block_arnoldi_basis", "prima"]


@dataclass
class CongruenceModel:
    """Reduced model in congruence (pencil) form.

    Evaluates ``Z_n(sigma) = Br^T (Gr + sigma Cr)^{-1} Br`` through the
    same :class:`TransferMap` convention as the Lanczos models, so the
    two families are directly comparable.
    """

    gr: np.ndarray
    cr: np.ndarray
    br: np.ndarray
    transfer: TransferMap
    port_names: list[str]
    source_size: int
    metadata: dict = field(default_factory=dict)

    @property
    def order(self) -> int:
        return self.gr.shape[0]

    @property
    def num_ports(self) -> int:
        return self.br.shape[1]

    def kernel(self, sigma: complex | np.ndarray) -> np.ndarray:
        sigma_arr = np.atleast_1d(np.asarray(sigma))
        p = self.num_ports
        out = np.empty((sigma_arr.size, p, p), dtype=complex)
        for k, sig in enumerate(sigma_arr.ravel()):
            out[k] = self.br.T @ np.linalg.solve(self.gr + sig * self.cr, self.br)
        if np.isscalar(sigma) or np.asarray(sigma).ndim == 0:
            return out[0]
        return out

    def impedance(self, s: complex | np.ndarray) -> np.ndarray:
        scalar = np.isscalar(s) or np.asarray(s).ndim == 0
        s_arr = np.atleast_1d(np.asarray(s))
        kernel = self.kernel(self.transfer.sigma(s_arr))
        pref = np.atleast_1d(np.asarray(self.transfer.prefactor(s_arr)))
        if pref.size == 1:
            pref = np.full(s_arr.size, pref.ravel()[0])
        out = kernel * pref[:, None, None]
        return out[0] if scalar else out

    def kernel_poles(self) -> np.ndarray:
        """Generalized eigenvalues ``sigma``: ``det(Gr + sigma Cr) = 0``."""
        import scipy.linalg

        eigenvalues = scipy.linalg.eigvals(self.gr, -self.cr)
        return eigenvalues[np.isfinite(eigenvalues)]

    def poles(self) -> np.ndarray:
        kernel_poles = self.kernel_poles()
        if self.transfer.sigma_power == 1:
            return kernel_poles
        roots = np.sqrt(kernel_poles.astype(complex))
        return np.concatenate([roots, -roots])

    def is_stable(self, tol: float = 1e-8) -> bool:
        poles = self.poles()
        if poles.size == 0:
            return True
        scale = max(1.0, float(np.abs(poles).max()))
        return bool(poles.real.max() <= tol * scale)

    def moments(self, count: int) -> list[np.ndarray]:
        """Kernel Taylor coefficients about 0 (dense solves; small n)."""
        out: list[np.ndarray] = []
        gr_inv_b = np.linalg.solve(self.gr, self.br)
        x = gr_inv_b
        for _ in range(count):
            out.append(self.br.T @ x)
            x = -np.linalg.solve(self.gr, self.cr @ x)
        return out


def block_arnoldi_basis(
    system: MNASystem,
    order: int,
    *,
    sigma0: float = 0.0,
    deflation_tol: float = 1e-10,
) -> np.ndarray:
    """Orthonormal block-Krylov basis of ``(Ghat^{-1}C, Ghat^{-1}B)``.

    Modified block Gram-Schmidt with re-orthogonalization and column
    deflation; returns an ``N x n'`` matrix with ``n' <= order`` (fewer
    when the space exhausts or columns deflate).
    """
    g_hat = sp.csc_matrix(system.shifted_g(sigma0))
    try:
        lu = checked_splu(g_hat)
    except FactorizationError as exc:
        raise ReductionError(
            f"G + sigma0 C singular at sigma0={sigma0}"
        ) from exc
    c = system.C.tocsr()

    columns: list[np.ndarray] = []
    block = lu.solve(system.B)
    reference = np.linalg.norm(block, axis=0)
    reference[reference == 0.0] = 1.0
    while len(columns) < order and block.shape[1] > 0:
        kept: list[np.ndarray] = []
        for j in range(block.shape[1]):
            w = block[:, j]
            for _ in range(2):  # re-orthogonalize
                for q in columns + kept:
                    w = w - q * (q @ w)
            norm = np.linalg.norm(w)
            if norm <= deflation_tol * reference[j]:
                continue
            kept.append(w / norm)
            if len(columns) + len(kept) >= order:
                break
        if not kept:
            break
        columns.extend(kept)
        block = lu.solve(c @ np.column_stack(kept))
        reference = np.linalg.norm(block, axis=0)
        reference[reference == 0.0] = 1.0
    if not columns:
        raise ReductionError("Arnoldi starting block is zero")
    return np.column_stack(columns)


def prima(
    system: MNASystem,
    order: int,
    *,
    sigma0: float = 0.0,
    deflation_tol: float = 1e-10,
) -> CongruenceModel:
    """PRIMA-style passive reduction by congruence projection.

    Parameters mirror :func:`repro.core.sympvl`; the expansion shift
    only affects the Krylov space (the projection uses the original
    ``G`` and ``C``, keeping the PSD structure and hence passivity).
    """
    v = block_arnoldi_basis(
        system, order, sigma0=sigma0, deflation_tol=deflation_tol
    )
    gr = v.T @ (system.G @ v)
    cr = v.T @ (system.C @ v)
    gr = 0.5 * (gr + gr.T)
    cr = 0.5 * (cr + cr.T)
    br = v.T @ system.B
    return CongruenceModel(
        gr=gr,
        cr=cr,
        br=br,
        transfer=system.transfer,
        port_names=list(system.port_names),
        source_size=system.size,
        metadata={"sigma0": sigma0, "basis_size": v.shape[1]},
    )
