"""PACT baseline: pole matching via congruence (paper ref. [11]).

Kerns, Wemple & Yang's PACT reduces RC substrate/parasitic networks by
a two-stage congruence:

1. a block elimination that decouples the *port* unknowns from the
   *internal* unknowns in ``G`` exactly (so the reduced model's DC
   behavior matches the original circuit exactly), and
2. modal truncation of the internal block: the generalized eigenpairs
   of ``(C_ii', G_ii)`` with the largest time constants -- the
   dominant, slowest *poles* of the network -- are kept verbatim
   ("pole matching").

Both stages are congruences of PSD matrices, so the reduced model is
passive by construction, like the Arnoldi baseline and unlike raw
matrix-Pade on indefinite pencils.  The trade against SyMPVL (ablation
ABL9): PACT needs a full eigendecomposition of the internal block
(dense ``O(N^3)``), keeps poles rather than matching moments, and is
formulated for RC networks only.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.circuits.mna import MNASystem
from repro.core.arnoldi import CongruenceModel
from repro.errors import FactorizationError, ReductionError
from repro.linalg.utils import checked_splu

__all__ = ["pact"]

#: internal blocks beyond this size would need an iterative eigensolver
_DENSE_EIG_LIMIT = 3000


def pact(system: MNASystem, n_poles: int) -> CongruenceModel:
    """Reduce an RC multi-port by PACT-style pole matching.

    Parameters
    ----------
    system:
        An assembled system in the ``"rc"`` formulation with
        nonsingular ``G`` (PACT's block elimination solves with the
        internal conductance block).
    n_poles:
        Number of internal eigenmodes (poles) to keep; the reduced
        order is ``num_ports + n_poles``.

    Returns
    -------
    CongruenceModel
        Passive by construction; its DC impedance equals the original
        circuit's exactly.

    Raises
    ------
    ReductionError
        For non-RC formulations, singular internal conductance, or
        internal blocks beyond the dense-eigensolver limit.
    """
    if system.formulation != "rc":
        raise ReductionError(
            'PACT applies to the "rc" formulation (substrate/parasitic '
            "RC networks, ref. [11])"
        )
    p = system.num_ports
    if n_poles < 0:
        raise ReductionError("n_poles must be >= 0")

    # partition unknowns into port-incident and internal nodes
    port_rows = sorted({int(r) for r in np.nonzero(system.B)[0]})
    internal_rows = [k for k in range(system.size) if k not in port_rows]
    if len(internal_rows) > _DENSE_EIG_LIMIT:
        raise ReductionError(
            f"internal block of size {len(internal_rows)} exceeds the "
            f"dense eigensolver limit {_DENSE_EIG_LIMIT}"
        )
    n_poles = min(n_poles, len(internal_rows))

    g = sp.csc_matrix(system.G)
    c = sp.csc_matrix(system.C)
    idx_p = np.array(port_rows, dtype=np.intp)
    idx_i = np.array(internal_rows, dtype=np.intp)

    g_pp = g[np.ix_(idx_p, idx_p)].toarray()
    g_ip = g[np.ix_(idx_i, idx_p)].toarray()
    g_ii = g[np.ix_(idx_i, idx_i)].tocsc()

    # stage 1: W = -G_ii^{-1} G_ip decouples G; X1 = [[I, 0], [W, I]]
    try:
        w = -checked_splu(g_ii).solve(g_ip) if idx_i.size else np.zeros((0, idx_p.size))
    except FactorizationError as exc:
        raise ReductionError(
            "internal conductance block is singular; PACT needs a "
            "resistive path among the internal nodes"
        ) from exc
    g_port = g_pp + g_ip.T @ w  # = G_pp - G_pi G_ii^{-1} G_ip (Schur)
    g_port = 0.5 * (g_port + g_port.T)

    c_pp = c[np.ix_(idx_p, idx_p)].toarray()
    c_ip = c[np.ix_(idx_i, idx_p)].toarray()
    c_ii = c[np.ix_(idx_i, idx_i)].toarray()
    # C' blocks under X1
    c_port = c_pp + c_ip.T @ w + w.T @ c_ip + w.T @ c_ii @ w
    c_port = 0.5 * (c_port + c_port.T)
    c_cross = c_ip + c_ii @ w  # internal x port block of C'

    if n_poles and idx_i.size:
        # stage 2: dominant eigenmodes of (C_ii, G_ii); G_ii-orthonormal
        g_ii_dense = g_ii.toarray()
        mu, vectors = scipy.linalg.eigh(c_ii, g_ii_dense)
        order = np.argsort(mu)[::-1][:n_poles]  # largest time constants
        basis = vectors[:, order]  # V^T G_ii V = I by eigh normalization
        gr_int = np.eye(n_poles)
        cr_int = np.diag(mu[order])
        cr_cross = basis.T @ c_cross
    else:
        gr_int = np.zeros((0, 0))
        cr_int = np.zeros((0, 0))
        cr_cross = np.zeros((0, idx_p.size))

    k = gr_int.shape[0]
    gr = np.zeros((p + k, p + k))
    cr = np.zeros((p + k, p + k))
    gr[:p, :p] = g_port
    gr[p:, p:] = gr_int
    cr[:p, :p] = c_port
    cr[p:, p:] = cr_int
    cr[p:, :p] = cr_cross
    cr[:p, p:] = cr_cross.T
    br = np.vstack([system.B[idx_p], np.zeros((k, p))])

    return CongruenceModel(
        gr=gr,
        cr=cr,
        br=br,
        transfer=system.transfer,
        port_names=list(system.port_names),
        source_size=system.size,
        metadata={"algorithm": "pact", "kept_poles": k},
    )
