"""Stability and passivity analysis / certification (paper section 5).

For RC, RL, and LC circuits the paper *proves* the reduced models are
stable and passive at every order.  :func:`certify` checks the
hypotheses of those theorems on a concrete model (``Delta = I``, ``T``
symmetric PSD, and -- for a shifted expansion -- the spectral bound
``lambda_max(T) <= 1/sigma0`` that keeps all poles non-positive); when
they hold, stability and passivity are certified *algebraically*, no
sampling needed.  :func:`positive_real_margin` provides the sampled
check used for general RLC models, and :func:`stabilize` implements a
pole-truncation post-processing in the spirit of the paper's concluding
remarks ("can be made stable and passive using suitable post-processing
techniques").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ReducedOrderModel

__all__ = [
    "Certification",
    "certify",
    "clamp_spectrum",
    "positive_real_margin",
    "stabilize",
    "enforce_passivity",
]


@dataclass(frozen=True)
class Certification:
    """Outcome of the section-5 theorem check.

    ``certified`` means stability *and* passivity follow algebraically;
    the individual hypothesis flags localize any failure.
    """

    certified: bool
    delta_is_identity: bool
    t_symmetric: bool
    t_positive_semidefinite: bool
    shift_bound_holds: bool
    min_t_eigenvalue: float
    max_t_eigenvalue: float

    def __str__(self) -> str:  # pragma: no cover - debug aid
        status = "certified" if self.certified else "NOT certified"
        return (
            f"Certification({status}: Delta=I {self.delta_is_identity}, "
            f"T sym {self.t_symmetric}, T>=0 {self.t_positive_semidefinite}, "
            f"shift bound {self.shift_bound_holds})"
        )


def certify(
    model: ReducedOrderModel, tol: float = 1e-8, *, monitor=None
) -> Certification:
    """Check the section-5 stability/passivity hypotheses on ``model``.

    The theorems assume ``J = I`` (so ``Delta_n = I``, eq. 20) and
    ``T_n`` symmetric positive semi-definite (eq. 21 + the PSD pencil).
    With a real non-negative expansion shift ``sigma0`` the poles are
    ``sigma0 - 1/lambda``; the additional bound
    ``lambda_max(T) <= 1/sigma0`` (inherited from the full system by
    Cauchy interlacing) keeps them non-positive.

    When a health ``monitor`` is supplied the full certificate is
    recorded as a ``passivity.certify`` event.
    """
    n = model.order
    delta_ok = bool(
        np.abs(model.delta - np.eye(n)).max() <= tol * max(1.0, np.abs(model.delta).max())
    )
    t_scale = max(1.0, float(np.abs(model.t).max()))
    sym_ok = bool(np.abs(model.t - model.t.T).max() <= 1e-6 * t_scale)
    eigenvalues = (
        np.linalg.eigvalsh(0.5 * (model.t + model.t.T))
        if sym_ok
        else np.real(np.linalg.eigvals(model.t))
    )
    min_eig = float(eigenvalues.min()) if eigenvalues.size else 0.0
    max_eig = float(eigenvalues.max()) if eigenvalues.size else 0.0
    psd_ok = min_eig >= -tol * t_scale
    if model.sigma0 > 0.0:
        shift_ok = max_eig <= (1.0 + 1e-6) / model.sigma0
    else:
        shift_ok = model.sigma0 == 0.0
    certification = Certification(
        certified=delta_ok and sym_ok and psd_ok and shift_ok,
        delta_is_identity=delta_ok,
        t_symmetric=sym_ok,
        t_positive_semidefinite=psd_ok,
        shift_bound_holds=shift_ok,
        min_t_eigenvalue=min_eig,
        max_t_eigenvalue=max_eig,
    )
    if monitor is not None:
        monitor.record(
            "passivity.certify",
            certified=certification.certified,
            delta_is_identity=delta_ok,
            t_symmetric=sym_ok,
            t_positive_semidefinite=psd_ok,
            shift_bound_holds=shift_ok,
            min_t_eigenvalue=min_eig,
            max_t_eigenvalue=max_eig,
            sigma0=model.sigma0,
            order=n,
        )
    return certification


def clamp_spectrum(model: ReducedOrderModel) -> ReducedOrderModel:
    """Eigenvalue clamping: repair a marginally failed PSD certificate.

    Symmetrizes ``T``, clamps negative eigenvalues to zero, and (for a
    positive shift) clamps eigenvalues above ``1/sigma0`` down to that
    bound -- the two spectral hypotheses of the section-5 theorems that
    roundoff can break.  The perturbation is the size of the violation,
    so a *marginal* failure is repaired nearly losslessly; a structural
    failure (``Delta != I``) is untouched and will still fail
    re-certification, which is the caller's signal that clamping is the
    wrong tool.  Used by the ``clamp-passivity`` recovery policy.
    """
    sym = 0.5 * (model.t + model.t.T)
    eigenvalues, vectors = np.linalg.eigh(sym)
    clamped = np.clip(eigenvalues, 0.0, None)
    if model.sigma0 > 0.0:
        clamped = np.minimum(clamped, 1.0 / model.sigma0)
    t_new = (vectors * clamped) @ vectors.T
    return ReducedOrderModel(
        t=t_new,
        delta=model.delta.copy(),
        rho=model.rho.copy(),
        sigma0=model.sigma0,
        transfer=model.transfer,
        port_names=list(model.port_names),
        source_size=model.source_size,
        guaranteed_stable_passive=model.guaranteed_stable_passive,
        factorization_method=model.factorization_method,
        metadata={
            **model.metadata,
            "spectrum_clamped": float(np.abs(t_new - model.t).max(initial=0.0)),
        },
        direct=None if model.direct is None else model.direct.copy(),
        output=None if model.output is None else model.output.copy(),
    )


def positive_real_margin(
    model,
    omega: np.ndarray,
    *,
    real_axis_points: int = 5,
    damping: float = 0.0,
) -> float:
    """Sampled positive-real margin over ``s = (damping + j) omega``
    plus a few positive-real-axis points (condition (iii), section 5.2).

    Works for any object with an ``impedance`` method (Lanczos or
    congruence models).  Returns the smallest eigenvalue of the
    Hermitian part of ``Z(s)`` over the sample set; non-negative means
    no passivity violation was detected.

    For lossless (LC) models the poles sit *on* the imaginary axis, so
    sampling there is numerically ill-posed; pass a small positive
    ``damping`` to probe strictly inside the right half plane, where
    condition (iii) actually lives.
    """
    omega = np.asarray(omega, dtype=float)
    samples = [(damping + 1j) * omega]
    if omega.size and real_axis_points > 0:
        # probe the positive real axis across the caller's band; going
        # far below it is meaningless for shifted models, whose pole at
        # sigma = 0 is only located to ~eps * sigma0 (cancellation in
        # sigma0 - 1/lambda)
        w_max = max(float(np.abs(omega).max()), 1.0)
        w_min = max(float(np.abs(omega).min()), 1e-2)
        samples.append(
            np.logspace(np.log10(w_min), np.log10(w_max), real_axis_points)
        )
    margin = np.inf
    for s_set in samples:
        z = model.impedance(s_set)
        for zk in np.atleast_3d(z.reshape(-1, z.shape[-2], z.shape[-1])):
            hermitian = 0.5 * (zk + zk.conj().T)
            margin = min(margin, float(np.linalg.eigvalsh(hermitian).min()))
    return margin


def stabilize(
    model: ReducedOrderModel,
    rtol: float = 1e-8,
    *,
    mode: str = "reflect",
    band: tuple[float, float] | None = None,
) -> ReducedOrderModel:
    """Post-process a (general RLC) model into a stable one.

    Realizes the "suitable post-processing" the paper's concluding
    remarks defer to future work, in its standard modal form.  The model
    is eigen-decomposed into modes ``c_k L_k / (1 + u lambda_k)``; a
    mode is *unstable* when its kernel pole ``sigma0 - 1/lambda_k`` has
    real part exceeding ``rtol`` times the pole scale (so the legitimate
    simple pole at ``sigma = 0`` of capacitively-terminated circuits
    survives, see section 5.1).  Unstable modes are handled by:

    * ``mode="reflect"`` (default): the pole is mirrored into the left
      half plane (``sigma -> -Re sigma + j Im sigma``), preserving the
      magnitude contribution; modes with negligible ``|lambda|`` (poles
      far outside any band, numerically a *constant* in-band
      contribution) become exact constant modes (``lambda = 0``).
    * ``mode="truncate"``: the mode is dropped entirely.

    When ``band = (w_lo, w_hi)`` (rad/s) is given, each unstable mode is
    replaced by the least-squares fit of its in-band response in the
    stable basis ``{1, 1/(1 + u lambda_reflected)}`` -- i.e. a constant
    (folded into the model's ``direct`` term) plus a rescaled reflected
    mode.  This spans the blind reflect/constant/drop repairs and is
    therefore never worse on the band; spurious right-half-plane Pade
    artifacts just outside the band are repaired nearly losslessly.

    Conjugate eigenvalue pairs are realified into 2x2 rotation blocks,
    so the returned model has real matrices again.
    """
    if mode not in ("reflect", "truncate"):
        raise ValueError(f"mode must be 'reflect' or 'truncate', got {mode!r}")
    eigenvalues, vectors = np.linalg.eig(model.t)
    lam_scale = float(np.abs(eigenvalues).max()) if eigenvalues.size else 0.0
    dynamic = np.abs(eigenvalues) > 1e-12 * max(lam_scale, 1e-300)
    poles = np.full(eigenvalues.shape, -np.inf + 0j, dtype=complex)
    poles[dynamic] = model.sigma0 - 1.0 / eigenvalues[dynamic]
    finite = np.isfinite(poles.real)
    pole_scale = max(
        abs(model.sigma0),
        float(np.abs(poles[finite]).max()) if finite.any() else 0.0,
        1e-300,
    )
    unstable = poles.real > rtol * pole_scale
    if not unstable.any():
        return model

    # modal coordinates: Z(u) = sum_k c_k L_k / (1 + u lambda_k); use the
    # model's actual output functional (non-symmetric for MPVL/stabilized)
    c_rows = (model._rho_t_delta @ vectors).T  # row k = c_k (1 x p)
    l_rows = np.linalg.solve(vectors, model.rho)  # row k = L_k (1 x p)

    if band is not None:
        w_lo, w_hi = band
        grid = np.logspace(np.log10(max(w_lo, 1e-3)), np.log10(w_hi), 31)
        u_grid = model.transfer.sigma(1j * grid) - model.sigma0

    def band_fit(lam: complex, reflected_lam: complex) -> tuple[complex, complex]:
        """Least-squares fit ``1/(1+u lam) ~ alpha + beta/(1+u lam_refl)``
        over the band; returns ``(alpha, beta)``."""
        original = 1.0 / (1.0 + u_grid * lam)
        basis = np.column_stack(
            [np.ones_like(u_grid), 1.0 / (1.0 + u_grid * reflected_lam)]
        )
        coeffs, *_ = np.linalg.lstsq(basis, original, rcond=None)
        return complex(coeffs[0]), complex(coeffs[1])

    new_lambda = eigenvalues.astype(complex).copy()
    keep = np.ones(eigenvalues.size, dtype=bool)
    # per-mode residue rescale (beta) and constant extraction (alpha)
    residue_scale = np.ones(eigenvalues.size, dtype=complex)
    constant_coeff = np.zeros(eigenvalues.size, dtype=complex)
    for k in np.where(unstable)[0]:
        if mode == "truncate":
            keep[k] = False
            continue
        lam = eigenvalues[k]
        if abs(lam) <= 1e-10 * max(lam_scale, 1e-300):
            new_lambda[k] = 0.0  # constant in-band contribution
            continue
        pole = poles[k]
        reflected = -abs(pole.real) + 1j * pole.imag
        denom = model.sigma0 - reflected
        reflected_lam = 0.0 if denom == 0.0 else 1.0 / denom
        if band is None:
            new_lambda[k] = reflected_lam
            continue
        alpha, beta = band_fit(lam, complex(reflected_lam))
        new_lambda[k] = reflected_lam
        constant_coeff[k] = alpha
        residue_scale[k] = beta

    # keep conjugate pairs consistent: the realification below matches
    # partners by conjugate new_lambda values, so a pair must share the
    # same (conjugated) repair
    for k in np.where(unstable)[0]:
        for m in np.where(unstable)[0]:
            if m <= k:
                continue
            if np.isclose(eigenvalues[m], eigenvalues[k].conjugate(),
                          rtol=1e-8, atol=1e-300):
                keep[m] = keep[m] and keep[k]
                keep[k] = keep[m]
                new_lambda[m] = new_lambda[k].conjugate()
                residue_scale[m] = residue_scale[k].conjugate()
                constant_coeff[m] = constant_coeff[k].conjugate()
                break
        else:
            # unpaired (real-lambda) mode: its repair must stay real
            residue_scale[k] = residue_scale[k].real
            constant_coeff[k] = constant_coeff[k].real

    # extracted constants accumulate into the direct term
    direct_add = np.zeros((model.num_ports, model.num_ports), dtype=complex)
    for k in np.where(unstable)[0]:
        if keep[k] and constant_coeff[k] != 0.0:
            direct_add += constant_coeff[k] * np.outer(c_rows[k], l_rows[k])
    direct_add = np.real(direct_add)
    # fold the residue rescaling into the modal left coordinates
    l_rows = l_rows * residue_scale[:, None]

    blocks: list[np.ndarray] = []
    rho_rows: list[np.ndarray] = []
    out_rows: list[np.ndarray] = []
    handled = ~keep
    for k in range(eigenvalues.size):
        if handled[k]:
            continue
        lam = new_lambda[k]
        if abs(lam.imag) <= 1e-12 * max(abs(lam), 1e-300):
            blocks.append(np.array([[lam.real]]))
            rho_rows.append(l_rows[k].real[None, :])
            out_rows.append(c_rows[k].real[None, :])
            handled[k] = True
            continue
        partner = None
        for m in range(k + 1, eigenvalues.size):
            if not handled[m] and np.isclose(
                new_lambda[m], lam.conjugate(), rtol=1e-6, atol=1e-300
            ):
                partner = m
                break
        if partner is None:  # unmatched complex mode: keep its real part
            blocks.append(np.array([[lam.real]]))
            rho_rows.append(l_rows[k].real[None, :])
            out_rows.append(c_rows[k].real[None, :])
            handled[k] = True
            continue
        a, b = lam.real, lam.imag
        blocks.append(np.array([[a, b], [-b, a]]))
        # s L + conj(s L): coordinates of rho / outputs in the
        # (Re s, Im s) real basis of the conjugate pair.
        rho_rows.append(np.vstack([2.0 * l_rows[k].real, -2.0 * l_rows[k].imag]))
        out_rows.append(np.vstack([c_rows[k].real, c_rows[k].imag]))
        handled[k] = True
        handled[partner] = True

    if blocks:
        sizes = [blk.shape[0] for blk in blocks]
        n_new = sum(sizes)
        t_new = np.zeros((n_new, n_new))
        offset = 0
        for blk in blocks:
            w = blk.shape[0]
            t_new[offset : offset + w, offset : offset + w] = blk
            offset += w
        rho_new = np.vstack(rho_rows)
        out_new = np.vstack(out_rows)
    else:
        t_new = np.zeros((0, 0))
        rho_new = np.zeros((0, model.num_ports))
        out_new = np.zeros((0, model.num_ports))

    direct = model.direct.copy() if model.direct is not None else None
    if np.abs(direct_add).max(initial=0.0) > 0.0:
        direct = direct_add if direct is None else direct + direct_add

    # non-symmetric output functional: Z = out^T (I + uT)^{-1} rho
    return ReducedOrderModel(
        t=t_new,
        delta=np.eye(t_new.shape[0]),
        rho=rho_new,
        sigma0=model.sigma0,
        transfer=model.transfer,
        port_names=list(model.port_names),
        source_size=model.source_size,
        guaranteed_stable_passive=False,
        factorization_method=model.factorization_method,
        metadata={**model.metadata, "stabilized_from_order": model.order},
        direct=direct,
        output=out_new,
    )


def enforce_passivity(
    model: ReducedOrderModel,
    omega: np.ndarray,
    *,
    margin: float = 0.0,
    damping: float = 0.0,
) -> ReducedOrderModel:
    """Make a (general RLC) model passive by resistive padding.

    The paper's concluding remarks defer stable/passive post-processing
    of general RLC reductions to future work; this implements the
    classic two-step recipe:

    1. :func:`stabilize` the model with band-aware mode repair;
    2. sample the positive-real margin over the given band and, if it
       is negative, add a constant series-resistance term
       ``D = (|margin| + margin_target) * I`` to the impedance.

    The padding perturbs ``Z`` uniformly by at most the sampled
    violation, so accuracy degrades by exactly the amount of
    non-passivity that had to be repaired.  Only meaningful for
    impedance-kernel models (``sigma = s``, unit prefactor).

    Returns the original model unchanged when it is already passive on
    the sample set.
    """
    if model.transfer.sigma_power != 1 or model.transfer.prefactor_power != 0:
        raise ValueError(
            "resistive padding applies to sigma = s impedance kernels only"
        )
    if model.is_stable(1e-6):
        candidate = model
    else:
        omega_arr = np.asarray(omega, dtype=float)
        candidate = stabilize(
            model,
            band=(float(np.abs(omega_arr).min()), float(np.abs(omega_arr).max())),
        )
    found = positive_real_margin(candidate, omega, damping=damping)
    if found >= margin and candidate is model:
        return model
    if found >= margin:
        return candidate
    pad = (margin - found)
    direct = np.eye(candidate.num_ports) * pad
    if candidate.direct is not None:
        direct = direct + candidate.direct
    padded = ReducedOrderModel(
        t=candidate.t.copy(),
        delta=candidate.delta.copy(),
        rho=candidate.rho.copy(),
        sigma0=candidate.sigma0,
        transfer=candidate.transfer,
        port_names=list(candidate.port_names),
        source_size=candidate.source_size,
        guaranteed_stable_passive=False,
        factorization_method=candidate.factorization_method,
        metadata={**candidate.metadata, "passivity_padding": pad},
        direct=direct,
        output=None if candidate.output is None else candidate.output.copy(),
    )
    return padded
