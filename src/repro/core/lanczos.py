"""Symmetric block-Lanczos process with deflation and look-ahead.

This is Algorithm 1 of the paper, restructured around an explicit
candidate queue (the auxiliary vectors ``v-hat``) and a cluster list
(the look-ahead bookkeeping), which is mathematically equivalent to the
paper's index gymnastics; DESIGN.md section 3 discusses the mapping.
The defining properties are verified by the test-suite oracles:

* cluster-wise ``J``-orthogonality, eq. (16): ``V^T J V = Delta`` is
  block diagonal by clusters;
* starting-block expansion, eq. (18): ``J^{-1} M^{-1} B = V rho``;
* the projection identity ``T = Delta^{-1} V^T A V`` (third line of
  eq. 18), returned explicitly;
* the matrix-Pade moment-match property (14) of the resulting model.

Deflation follows steps 1c-1g: a candidate whose norm falls below the
deflation tolerance (relative to its norm at generation) is dropped and
the current block size shrinks by one; *inexact* deflations (residual
small but nonzero) are recorded, mirroring the set ``I_v``.  Look-ahead
follows steps 2a-2d: while the ``J``-Gram matrix of the open cluster is
(numerically) singular, the cluster keeps growing, and candidates are
kept linearly independent with the Euclidean projections of step 1b;
once the Gram matrix is regular the cluster closes and every pending
candidate is ``J``-orthogonalized against it (step 2c).

Two orthogonalization policies are offered.  ``"full"`` (default)
re-orthogonalizes new candidates against *all* closed clusters, twice —
a standard robustness enhancement over the paper's windowed recurrence.
``"local"`` keeps only the paper's short window (the clusters spanning
the last ``p_c + 1`` vectors, plus the inexact-deflation clusters of
step 3c), which exhibits the banded ``T`` structure the paper
emphasizes at the cost of gradual orthogonality loss.
"""

from __future__ import annotations

import math
import warnings
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import BreakdownError, NumericalWarning
from repro.linalg.operators import LanczosOperator

__all__ = [
    "LanczosOptions",
    "DeflationEvent",
    "LanczosResult",
    "LanczosEngine",
    "symmetric_block_lanczos",
]


@dataclass(frozen=True)
class LanczosOptions:
    """Tuning knobs of the Lanczos process.

    Attributes
    ----------
    deflation_tol:
        Candidate is deflated when its norm after orthogonalization drops
        below ``deflation_tol`` times its norm at generation (``dtol`` of
        step 1c).
    exact_deflation_tol:
        Below this relative norm a deflation counts as *exact* (the
        residual carries no information; no ``I_v`` entry is recorded).
    cluster_tol:
        The open cluster closes when the smallest eigenvalue magnitude of
        its ``J``-Gram matrix exceeds ``cluster_tol`` times its scale
        (the regularity test of step 2b).
    max_cluster:
        Hard cap on look-ahead cluster size; reaching it forces a close
        with a pseudo-inverse (with a warning) instead of running away.
    reorthogonalize:
        ``"full"`` (robust, default) or ``"local"`` (the paper's banded
        recurrence window).
    block_size:
        Number of successor generations batched into one blocked
        operator application (one triangular-solve pass through the
        factorization per block instead of one per column -- the hot
        loop of the large-net path).  ``0`` (default) picks
        automatically: the starting-block width in ``"full"`` mode, and
        ``1`` in ``"local"`` mode, whose banded-window bookkeeping is
        defined against immediate successor generation.
    """

    deflation_tol: float = 1.0e-10
    exact_deflation_tol: float = 1.0e-14
    cluster_tol: float = 1.0e-8
    max_cluster: int = 8
    reorthogonalize: str = "full"
    block_size: int = 0

    def __post_init__(self) -> None:
        if self.reorthogonalize not in ("full", "local"):
            raise ValueError(
                f"reorthogonalize must be 'full' or 'local', "
                f"got {self.reorthogonalize!r}"
            )
        if not 0.0 <= self.exact_deflation_tol <= self.deflation_tol < 1.0:
            raise ValueError("need 0 <= exact_deflation_tol <= deflation_tol < 1")
        if self.max_cluster < 1:
            raise ValueError("max_cluster must be >= 1")
        if self.block_size < 0:
            raise ValueError("block_size must be >= 0 (0 = automatic)")


@dataclass(frozen=True)
class DeflationEvent:
    """One deflation (step 1c-1f).

    ``step`` is the number of Lanczos vectors built when it happened;
    ``source`` identifies the deflated candidate: ``("b", j)`` for
    column ``j`` of the starting block, ``("av", m)`` for the candidate
    generated from Lanczos vector ``m`` (0-based).  ``exact`` mirrors
    the distinction of step 1e.
    """

    step: int
    source: tuple[str, int]
    residual_norm: float
    exact: bool


@dataclass
class LanczosResult:
    """Output of :func:`symmetric_block_lanczos`.

    Attributes
    ----------
    v:
        ``N x n`` matrix of Lanczos vectors (unit Euclidean norm).
    t:
        ``n x n`` projection ``Delta^{-1} V^T A V`` (eq. 18), computed
        explicitly after the iteration.
    t_recurrence:
        The same matrix assembled from the recurrence coefficients; in
        ``"local"`` mode this is banded as in the paper.
    delta:
        ``n x n`` block-diagonal ``V^T J V`` (identity when ``J = I``).
    rho:
        ``n x p`` expansion of the starting block: ``J^{-1}M^{-1}B = V rho``
        up to deflated residuals; only the first ``p1`` rows are nonzero.
    p1:
        ``p`` minus the number of deflations among the initial block.
    deflations:
        All deflation events in order.
    clusters:
        0-based Lanczos-vector indices per look-ahead cluster.
    exhausted:
        True when the candidate queue emptied (the Krylov space is
        exhausted and the model is exact: step 1d).
    breakdown_truncated:
        Number of trailing Lanczos vectors dropped because they formed
        an unclosed look-ahead cluster with a (numerically) singular
        ``J``-Gram matrix at termination -- the *incurable* breakdown
        case look-ahead cannot repair (the cluster can never be
        completed).  Zero in the definite (``J = I``) classes.
    """

    v: np.ndarray
    t: np.ndarray
    t_recurrence: np.ndarray
    delta: np.ndarray
    rho: np.ndarray
    p1: int
    deflations: list[DeflationEvent]
    clusters: list[list[int]]
    exhausted: bool
    breakdown_truncated: int = 0

    @property
    def order(self) -> int:
        return self.v.shape[1]

    @property
    def used_lookahead(self) -> bool:
        return any(len(c) > 1 for c in self.clusters)


class _Candidate:
    """An auxiliary vector ``v-hat`` waiting to become a Lanczos vector."""

    __slots__ = ("vec", "source", "gen_norm")

    def __init__(self, vec: np.ndarray, source: tuple[str, int]):
        self.vec = vec
        self.source = source
        self.gen_norm = float(np.linalg.norm(vec))


class _Cluster:
    """A look-ahead cluster: indices, basis slice, and its J-Gram data."""

    __slots__ = ("indices", "w", "jw", "delta", "delta_inv")

    def __init__(self) -> None:
        self.indices: list[int] = []
        self.w: np.ndarray | None = None
        self.jw: np.ndarray | None = None
        self.delta: np.ndarray | None = None
        self.delta_inv: np.ndarray | None = None


class LanczosEngine:
    """Resumable symmetric block-Lanczos process (paper Algorithm 1).

    Holds the full iteration state (Lanczos vectors, candidate queue,
    look-ahead clusters, coefficient books) so the order can be grown
    incrementally: ``extend(n1)`` then ``extend(n2 > n1)`` performs only
    the additional steps -- this is what makes the adaptive driver pay
    one factorization and one Krylov sweep total.  ``result()`` is
    non-destructive and can be called after every extension.

    The raw operator applications ``K v_m`` are cached at candidate
    generation, so finalizing ``T = Delta^{-1} V^T J K V`` costs no
    extra large-system work.
    """

    def __init__(
        self,
        operator: LanczosOperator,
        options: LanczosOptions | None = None,
        monitor=None,
    ):
        self._op = operator
        self._opts = options or LanczosOptions()
        self._monitor = monitor
        start = operator.start_block()
        start_norm = float(np.linalg.norm(start))
        if start_norm == 0.0 or not math.isfinite(start_norm):
            if monitor is not None:
                monitor.record(
                    "lanczos.breakdown", step=0, reason="zero-start",
                    residual_norm=start_norm,
                )
            raise BreakdownError(
                "starting block J^{-1} M^{-1} B is zero or non-finite",
                step=0,
                residual_norm=start_norm,
                source=("b", -1),
            )
        if monitor is not None:
            monitor.record(
                "lanczos.start",
                start_norm=start_norm,
                num_inputs=operator.num_inputs,
                system_size=operator.size,
            )
        self._p = operator.num_inputs
        self._n_full = operator.size
        self._vectors: list[np.ndarray] = []
        self._kv: dict[int, np.ndarray] = {}
        self._t_coeffs: dict[tuple[int, int], float] = {}
        self._rho_coeffs: dict[tuple[int, int], float] = {}
        self._deflations: list[DeflationEvent] = []
        self._inexact_clusters: set[int] = set()
        self._clusters: list[_Cluster] = [_Cluster()]
        self._queue: deque[_Candidate] = deque(
            _Candidate(np.array(start[:, j], dtype=float), ("b", j))
            for j in range(self._p)
        )
        # successor generation is deferred into blocks: vector indices
        # whose K v_m has not been computed yet (see _flush_pending)
        self._pending: list[int] = []
        if self._opts.block_size > 0:
            self._block = self._opts.block_size
        elif self._opts.reorthogonalize == "local":
            # the banded window (step 3b) is defined against immediate
            # successor generation; keep it exact
            self._block = 1
        else:
            self._block = max(1, self._p)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of Lanczos vectors built so far."""
        return len(self._vectors)

    @property
    def exhausted(self) -> bool:
        """Krylov space fully spanned: no candidates left or ``n = N``."""
        if len(self._vectors) >= self._n_full:
            return True
        return not self._queue and not self._pending

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------
    def _record(self, row: int, source: tuple[str, int], value: float) -> None:
        kind, col = source
        book = self._rho_coeffs if kind == "b" else self._t_coeffs
        key = (row, col)
        book[key] = book.get(key, 0.0) + value

    def _orthogonalize_closed(
        self, cand: _Candidate, cluster_ids: list[int]
    ) -> None:
        """``J``-orthogonalize a candidate against closed clusters."""
        for cid in cluster_ids:
            cluster = self._clusters[cid]
            coeffs = cluster.delta_inv @ (cluster.jw.T @ cand.vec)
            cand.vec -= cluster.w @ coeffs
            for row, coeff in zip(cluster.indices, coeffs):
                self._record(row, cand.source, float(coeff))

    def _closed_cluster_ids(self) -> list[int]:
        return [
            cid
            for cid, c in enumerate(self._clusters[:-1])
            if c.delta is not None
        ]

    def _local_window_ids(self, generated_from: int, p_c: int) -> list[int]:
        """Closed-cluster ids of the paper's short recurrence window.

        Covers the clusters containing vectors ``generated_from - p_c``
        through the present (the range gamma_v .. gamma-1 of step 3b),
        plus the inexact-deflation clusters of step 3c.
        """
        low = max(0, generated_from - p_c - self._opts.max_cluster)
        ids = {
            cid
            for cid, cl in enumerate(self._clusters[:-1])
            if cl.indices and cl.indices[-1] >= low
        }
        ids.update(
            cid
            for cid in self._inexact_clusters
            if self._clusters[cid].delta is not None
        )
        return sorted(ids)

    def _cluster_of(self, vector_index: int) -> int:
        for cid, cluster in enumerate(self._clusters):
            if vector_index in cluster.indices:
                return cid
        return len(self._clusters) - 1  # pragma: no cover - defensive

    def _close_cluster(self, *, forced: bool = False) -> None:
        """Steps 2c-2d: freeze the open cluster, fix pending candidates."""
        cluster = self._clusters[-1]
        w = np.column_stack([self._vectors[i] for i in cluster.indices])
        jw = self._op.j_product(w)
        delta = w.T @ jw
        delta = 0.5 * (delta + delta.T)
        pseudo_inverse = False
        try:
            delta_inv = np.linalg.inv(delta)
        except np.linalg.LinAlgError:
            pseudo_inverse = True
            warnings.warn(
                f"singular J-Gram matrix of a size-{len(cluster.indices)} "
                "look-ahead cluster; closing with a pseudo-inverse",
                NumericalWarning,
                stacklevel=3,
            )
            delta_inv = np.linalg.pinv(delta)
        if self._monitor is not None:
            eigs = np.abs(np.linalg.eigvalsh(delta))
            largest = float(eigs.max(initial=0.0))
            smallest = float(eigs.min(initial=0.0))
            condition = math.inf if smallest == 0.0 else largest / smallest
            self._monitor.record(
                "lanczos.cluster",
                step=len(self._vectors),
                size=len(cluster.indices),
                condition=condition,
                forced=forced,
                pseudo_inverse=pseudo_inverse,
            )
        cluster.w, cluster.jw = w, jw
        cluster.delta, cluster.delta_inv = delta, delta_inv
        cid = len(self._clusters) - 1
        for cand in self._queue:
            self._orthogonalize_closed(cand, [cid])
        self._clusters.append(_Cluster())

    def _open_cluster_regular(self) -> bool:
        """Step 2b regularity test on the open cluster's J-Gram matrix."""
        cluster = self._clusters[-1]
        w = np.column_stack([self._vectors[i] for i in cluster.indices])
        delta = w.T @ self._op.j_product(w)
        delta = 0.5 * (delta + delta.T)
        scale = max(1.0, float(np.abs(delta).max()))
        smallest = float(np.abs(np.linalg.eigvalsh(delta)).min())
        return smallest > self._opts.cluster_tol * scale

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def extend(self, order: int) -> int:
        """Grow the basis to (at least) ``order`` vectors.

        Returns the actual order reached: smaller on exhaustion, and
        possibly *larger* when the requested order lands inside an
        incomplete look-ahead cluster -- the iteration then continues
        until the cluster's ``J``-Gram matrix becomes regular (the
        cluster closes), because a model cannot be assembled across an
        open singular cluster (paper step 2b).
        """
        order = min(order, self._n_full)
        if order < 1:
            raise BreakdownError("requested order must be >= 1")
        self._run_to(order)
        # complete a dangling look-ahead cluster if one is open
        while (
            self._clusters[-1].indices
            and (self._queue or self._pending)
            and not self._open_cluster_regular()
        ):
            self._run_to(len(self._vectors) + 1)
        return len(self._vectors)

    def _flush_pending(self) -> None:
        """Generate the deferred successors ``K v_m`` with one blocked apply.

        This is the blocked hot loop: all pending Lanczos vectors go
        through the factorization's triangular solves as one multi-column
        right-hand side (``LanczosOperator.apply`` accepts blocks), then
        each resulting candidate is orthogonalized and enqueued in vector
        order -- the same queue order immediate generation produces.
        """
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        if len(pending) == 1:
            raws = [
                np.array(self._op.apply(self._vectors[pending[0]]), dtype=float)
            ]
        else:
            block = np.column_stack([self._vectors[m] for m in pending])
            applied = self._op.apply(block)
            raws = [
                np.array(applied[:, j], dtype=float)
                for j in range(len(pending))
            ]
        for m, raw in zip(pending, raws):
            self._kv[m] = raw
            new = _Candidate(raw.copy(), ("av", m))
            if self._opts.reorthogonalize == "full":
                closed_ids = self._closed_cluster_ids()
            else:
                p_c_now = len(self._queue) + 1
                closed_ids = self._local_window_ids(m, p_c_now)
            self._orthogonalize_closed(new, closed_ids)
            self._queue.append(new)

    def _run_to(self, order: int) -> None:
        opts = self._opts
        while len(self._vectors) < order and (self._queue or self._pending):
            if not self._queue:
                self._flush_pending()
            cand = self._queue.popleft()

            # step 1b: Euclidean projection against the open cluster,
            # plus a second full pass over closed clusters in "full" mode
            passes = 2 if opts.reorthogonalize == "full" else 1
            for _ in range(passes):
                if opts.reorthogonalize == "full":
                    self._orthogonalize_closed(
                        cand, self._closed_cluster_ids()
                    )
                for i in self._clusters[-1].indices:
                    tau = float(self._vectors[i] @ cand.vec)
                    cand.vec -= tau * self._vectors[i]
                    self._record(i, cand.source, tau)

            norm = float(np.linalg.norm(cand.vec))
            if not math.isfinite(norm):
                if self._monitor is not None:
                    self._monitor.record(
                        "lanczos.nonfinite",
                        step=len(self._vectors),
                        source=cand.source,
                    )
                raise BreakdownError(
                    f"non-finite candidate (NaN/Inf) at Lanczos step "
                    f"{len(self._vectors)} from source {cand.source}",
                    step=len(self._vectors),
                    residual_norm=norm,
                    source=cand.source,
                )
            reference = max(cand.gen_norm, 1e-300)
            if norm <= opts.deflation_tol * reference:
                exact = norm <= opts.exact_deflation_tol * reference
                self._deflations.append(
                    DeflationEvent(len(self._vectors), cand.source, norm, exact)
                )
                if self._monitor is not None:
                    self._monitor.record(
                        "lanczos.deflation",
                        step=len(self._vectors),
                        source=cand.source,
                        residual_norm=norm,
                        relative_norm=norm / reference,
                        exact=exact,
                    )
                if not exact and cand.source[0] == "av":
                    self._inexact_clusters.add(self._cluster_of(cand.source[1]))
                continue

            # step 1h: normalize and append
            n_idx = len(self._vectors)
            self._vectors.append(cand.vec / norm)
            self._record(n_idx, cand.source, norm)
            self._clusters[-1].indices.append(n_idx)

            # step 2: close the cluster if its J-Gram matrix is regular
            if self._open_cluster_regular():
                self._close_cluster()
            elif len(self._clusters[-1].indices) >= opts.max_cluster:
                warnings.warn(
                    f"look-ahead cluster reached max size {opts.max_cluster};"
                    " closing with a pseudo-inverse",
                    NumericalWarning,
                    stacklevel=2,
                )
                self._close_cluster(forced=True)

            # step 3: schedule the successor candidate K v_n; generation
            # is deferred so a whole block shares one triangular-solve
            # pass (the raw product is cached for the finalization
            # projection when the block flushes)
            self._pending.append(n_idx)
            if len(self._pending) >= self._block:
                self._flush_pending()

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def result(self) -> LanczosResult:
        """Assemble the (non-destructive) result at the current order."""
        # the finalization projection needs every cached K v_m: flush any
        # successors still deferred in the current block
        self._flush_pending()
        n = len(self._vectors)
        if n == 0:
            raise BreakdownError(
                "all starting-block columns were deflated; "
                "the input matrix B is (numerically) zero",
                step=0,
                source=("b", -1),
            )

        # Incurable breakdown at termination: if the still-open cluster's
        # J-Gram matrix is singular AND the space is exhausted, the
        # cluster can never close; its vectors cannot enter the oblique
        # projection and must be dropped (they would make Delta singular).
        truncated = 0
        open_cluster = self._clusters[-1]
        if open_cluster.indices and self.exhausted:
            w = np.column_stack(
                [self._vectors[i] for i in open_cluster.indices]
            )
            block = w.T @ self._op.j_product(w)
            block = 0.5 * (block + block.T)
            scale = max(1.0, float(np.abs(block).max()))
            smallest = float(np.abs(np.linalg.eigvalsh(block)).min())
            if smallest <= self._opts.cluster_tol * scale:
                truncated = len(open_cluster.indices)
                n -= truncated
                if self._monitor is not None:
                    self._monitor.record(
                        "lanczos.breakdown",
                        step=n,
                        reason="incurable",
                        cluster_size=truncated,
                        residual_norm=smallest,
                    )
                if n == 0:
                    raise BreakdownError(
                        "incurable look-ahead breakdown consumed every "
                        "Lanczos vector",
                        step=0,
                        cluster_size=truncated,
                        residual_norm=smallest,
                    )
        v = np.column_stack(self._vectors[:n])

        # Delta: block-diagonal cluster Gram matrices (open cluster too)
        delta_full = np.zeros((n, n))
        cluster_indices: list[list[int]] = []
        for cluster in self._clusters:
            indices = [i for i in cluster.indices if i < n]
            if not indices:
                continue
            cluster_indices.append(indices)
            idx = np.array(indices)
            if cluster.delta is not None and len(indices) == len(
                cluster.indices
            ):
                block = cluster.delta
            else:
                w = v[:, idx]
                block = w.T @ self._op.j_product(w)
                block = 0.5 * (block + block.T)
            delta_full[np.ix_(idx, idx)] = block

        rho = np.zeros((n, self._p))
        for (row, col), value in self._rho_coeffs.items():
            if row < n:
                rho[row, col] = value
        t_rec = np.zeros((n, n))
        for (row, col), value in self._t_coeffs.items():
            if row < n and col < n:
                t_rec[row, col] = value

        # explicit projection T = Delta^{-1} V^T J K V (cached products)
        kv = np.column_stack([self._kv[m] for m in range(n)])
        vt_j_kv = v.T @ self._op.j_product(kv)
        try:
            t_explicit = np.linalg.solve(delta_full, vt_j_kv)
        except np.linalg.LinAlgError:
            t_explicit = np.linalg.pinv(delta_full) @ vt_j_kv

        p1 = self._p - sum(
            1 for d in self._deflations if d.source[0] == "b"
        )
        if self._monitor is not None:
            # orthogonality loss: worst violation of the cluster-wise
            # J-orthogonality V^T J V = Delta (eq. 16) -- the standard
            # health indicator of a Lanczos run
            vjv = v.T @ self._op.j_product(v)
            loss = float(np.abs(vjv - delta_full).max(initial=0.0))
            scale = max(1.0, float(np.abs(delta_full).max(initial=0.0)))
            self._monitor.record(
                "lanczos.orthogonality",
                loss=loss / scale,
                order=n,
                truncated=truncated,
                exhausted=self.exhausted,
                deflations=len(self._deflations),
            )
        return LanczosResult(
            v=v,
            t=t_explicit,
            t_recurrence=t_rec,
            delta=delta_full,
            rho=rho,
            p1=p1,
            deflations=list(self._deflations),
            clusters=cluster_indices,
            exhausted=self.exhausted,
            breakdown_truncated=truncated,
        )


def symmetric_block_lanczos(
    operator: LanczosOperator,
    order: int,
    options: LanczosOptions | None = None,
    monitor=None,
) -> LanczosResult:
    """Run the symmetric block-Lanczos process (paper Algorithm 1).

    One-shot front end over :class:`LanczosEngine`.

    Parameters
    ----------
    operator:
        Matrix-free products with ``K = J^{-1} M^{-1} C M^{-T}`` and the
        starting block ``J^{-1} M^{-1} B``.
    order:
        Requested number of Lanczos vectors ``n``.  Fewer are returned
        when the Krylov space exhausts first (``exhausted`` flag).
    options:
        :class:`LanczosOptions`; defaults are suitable for double
        precision.
    monitor:
        Optional :class:`repro.robustness.health.HealthMonitor`;
        deflations, cluster closures, breakdowns, and the final
        orthogonality loss are recorded into it.

    Raises
    ------
    BreakdownError
        If the starting block itself is identically zero (or every
        column of it deflates), or a candidate turns non-finite.  The
        error carries structured ``step`` / ``source`` /
        ``residual_norm`` fields for recovery dispatch.
    """
    engine = LanczosEngine(operator, options, monitor=monitor)
    engine.extend(order)
    return engine.result()
