"""The reduced-order model object produced by the MOR drivers.

Wraps the triple ``(T_n, Delta_n, rho_n)`` of eq. (19),

``Z_n(sigma) = rho^T Delta (I + (sigma - sigma0) T)^{-1} rho``

(the shifted form of eq. 26), together with the :class:`TransferMap`
that relates the kernel variable ``sigma`` to physical frequency ``s``
(``sigma = s`` for RC/RL/RLC, ``sigma = s**2`` for LC circuits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.circuits.mna import TransferMap
from repro.errors import ReductionError

__all__ = ["ReducedOrderModel", "StateSpace"]


@dataclass(frozen=True)
class StateSpace:
    """Time-domain realization of eq. (23).

    ``Gr x(t) + Cr dx/dt = Br i(t)``, ``v(t) = Lr^T x(t) + D i(t)``,
    where for the unshifted model ``Gr = Delta^{-1}``,
    ``Cr = T Delta^{-1}``, ``Br = Lr = rho``, and ``D`` is the optional
    direct feed-through (zero for plain SyMPVL models; nonzero after
    resistive passivity enforcement).
    """

    gr: np.ndarray
    cr: np.ndarray
    br: np.ndarray
    lr: np.ndarray
    d: np.ndarray | None = None

    @property
    def order(self) -> int:
        return self.gr.shape[0]


@dataclass
class ReducedOrderModel:
    """Matrix-Pade reduced-order model of a multi-port impedance.

    Attributes
    ----------
    t, delta, rho:
        The Lanczos output matrices of eq. (19) (``n x n``, ``n x n``
        block diagonal, ``n x p``).
    sigma0:
        Expansion point in the kernel variable (eq. 26 shift).
    transfer:
        Physical-frequency mapping (see :class:`TransferMap`).
    port_names:
        Impedance-matrix ordering.
    source_size:
        Dimension ``N`` of the original system (for reduction-ratio
        reporting).
    guaranteed_stable_passive:
        True when the reduction ran on a PSD pencil with ``J = I`` --
        exactly the hypothesis of the paper's section 5 theorems.
    """

    t: np.ndarray
    delta: np.ndarray
    rho: np.ndarray
    sigma0: float
    transfer: TransferMap
    port_names: list[str]
    source_size: int
    guaranteed_stable_passive: bool = False
    factorization_method: str = ""
    metadata: dict = field(default_factory=dict)
    #: optional direct (frequency-independent) kernel term, e.g. the
    #: resistive padding added by passivity enforcement
    direct: np.ndarray | None = None
    #: optional non-symmetric output map (``n x p``); when set,
    #: ``Z = output^T (I + uT)^{-1} rho`` instead of the symmetric
    #: ``rho^T Delta (...) rho`` -- used by MPVL and modal post-processing
    output: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.t = np.asarray(self.t, dtype=float)
        self.delta = np.asarray(self.delta, dtype=float)
        self.rho = np.asarray(self.rho, dtype=float)
        n = self.t.shape[0]
        if self.t.shape != (n, n) or self.delta.shape != (n, n):
            raise ReductionError("T and Delta must be square and same size")
        if self.rho.shape[0] != n:
            raise ReductionError("rho must have one row per state")
        if self.direct is not None:
            self.direct = np.asarray(self.direct, dtype=float)
            p = self.rho.shape[1]
            if self.direct.shape != (p, p):
                raise ReductionError("direct term must be p x p")
        if self.output is not None:
            self.output = np.asarray(self.output, dtype=float)
            if self.output.shape != self.rho.shape:
                raise ReductionError("output map must have rho's shape")
            self._rho_t_delta = self.output.T
        else:
            self._rho_t_delta = self.rho.T @ self.delta
        # lazily attached pole-residue form (repro.engine.compiled);
        # False marks a model whose compilation fell back, so batch
        # evaluation does not retry the eigendecomposition every call
        self._compiled = None

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Reduced order ``n``."""
        return self.t.shape[0]

    @property
    def num_ports(self) -> int:
        return self.rho.shape[1]

    @property
    def reduction_ratio(self) -> float:
        """``N / n``: how much smaller the model is than the circuit."""
        return self.source_size / max(self.order, 1)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    #: array sizes below this evaluate by direct solves; compiling
    #: (one n x n eigendecomposition) only pays off for larger batches
    _COMPILE_MIN_BATCH = 4

    def kernel(self, sigma: complex | np.ndarray) -> np.ndarray:
        """Evaluate ``H_n(sigma) = rho^T Delta (I + u T)^{-1} rho`` with
        ``u = sigma - sigma0``.

        Returns a ``p x p`` array for scalar input, ``(m, p, p)`` for an
        array of ``m`` points.  Scalar input takes a single-solve fast
        path; batches route through the lazily compiled pole-residue
        form (:mod:`repro.engine.compiled`) -- one eigendecomposition on
        first use, then zero linear solves per point -- falling back to
        per-point solves for defective ``T``.
        """
        if np.isscalar(sigma) or np.asarray(sigma).ndim == 0:
            u = complex(sigma) - self.sigma0
            solved = np.linalg.solve(
                np.eye(self.order) + u * self.t, self.rho.astype(complex)
            )
            out = self._rho_t_delta @ solved
            if self.direct is not None:
                out = out + self.direct
            return out
        sigma_arr = np.atleast_1d(np.asarray(sigma)).ravel()
        if sigma_arr.size >= self._COMPILE_MIN_BATCH:
            compiled = self._ensure_compiled()
            if compiled is not None:
                return compiled.kernel(sigma_arr)
        return self._kernel_direct(sigma_arr)

    def _kernel_direct(self, sigma_arr: np.ndarray) -> np.ndarray:
        """Per-point dense-solve evaluation (the compiled form's
        reference; also its fallback for defective ``T``)."""
        sigma_arr = np.atleast_1d(np.asarray(sigma_arr)).ravel()
        n = self.order
        p = self.num_ports
        eye = np.eye(n)
        out = np.empty((sigma_arr.size, p, p), dtype=complex)
        for k, sig in enumerate(sigma_arr):
            u = sig - self.sigma0
            solved = np.linalg.solve(eye + u * self.t, self.rho)
            out[k] = self._rho_t_delta @ solved
        if self.direct is not None:
            out = out + self.direct
        return out

    def _ensure_compiled(self):
        """The attached spectral :class:`CompiledModel`, or ``None``
        when compilation is unavailable or fell back to direct mode."""
        if self._compiled is None:
            try:
                from repro.engine.compiled import CompiledModel
            except ImportError:  # pragma: no cover - engine not shipped
                self._compiled = False
                return None
            compiled = CompiledModel.from_rom(self)
            self._compiled = compiled if compiled.is_spectral else False
        return self._compiled or None

    def impedance(self, s: complex | np.ndarray) -> np.ndarray:
        """Physical impedance ``Z_n(s)`` including the transfer mapping.

        For LC circuits this evaluates
        ``s * H_n(s**2)`` (paper section 7.1); for RL, ``s * H_n(s)``.
        """
        scalar = np.isscalar(s) or np.asarray(s).ndim == 0
        s_arr = np.atleast_1d(np.asarray(s))
        kernel = self.kernel(self.transfer.sigma(s_arr))
        pref = np.atleast_1d(np.asarray(self.transfer.prefactor(s_arr)))
        if pref.size == 1:
            pref = np.full(s_arr.size, pref.ravel()[0])
        out = kernel * pref[:, None, None]
        return out[0] if scalar else out

    def __call__(self, s: complex | np.ndarray) -> np.ndarray:
        return self.impedance(s)

    # ------------------------------------------------------------------
    # spectral structure
    # ------------------------------------------------------------------
    def kernel_poles(self) -> np.ndarray:
        """Poles in the kernel variable: ``sigma = sigma0 - 1/lambda``
        for each nonzero eigenvalue ``lambda`` of ``T`` (section 5).

        Eigenvalues negligible relative to ``||T||`` are zero up to
        roundoff; their modes are frequency-independent (no pole) and
        are excluded rather than mapped to spurious near-infinite poles.
        For a shifted expansion the model's own frequency resolution
        gives a second zero threshold: an eigenvalue with
        ``|lambda| * sigma0 <= eps`` contributes ``|u lambda| <= eps``
        for every ``|u|`` up to the expansion scale, i.e. its mode is a
        constant to machine precision over the entire resolvable band
        (this covers degenerate circuits whose whole ``T`` is
        roundoff-level, where the relative filter alone keeps spurious
        poles at ``~1/eps`` times the band edge).
        """
        eigenvalues = scipy.linalg.eigvals(self.t)
        scale = float(np.abs(eigenvalues).max()) if eigenvalues.size else 0.0
        tiny = 1e-12 * scale
        if self.sigma0:
            tiny = max(tiny, np.finfo(float).eps / abs(self.sigma0))
        nonzero = eigenvalues[np.abs(eigenvalues) > max(tiny, 1e-300)]
        return self.sigma0 - 1.0 / nonzero

    def poles(self) -> np.ndarray:
        """Poles mapped to the physical ``s`` plane.

        For ``sigma = s**2`` (LC circuits) each kernel pole ``sigma_k``
        yields the conjugate pair ``+/- sqrt(sigma_k)``.
        """
        kernel_poles = self.kernel_poles()
        if self.transfer.sigma_power == 1:
            return kernel_poles
        roots = np.sqrt(kernel_poles.astype(complex))
        return np.concatenate([roots, -roots])

    def residues(self) -> list[tuple[complex, np.ndarray]]:
        """Matrix Foster form: ``Z_n(sigma) = sum_k R_k / (1 + u lam_k)``.

        Returns ``(lambda_k, R_k)`` pairs from the eigendecomposition of
        ``T`` in the model's output metric; each residue ``R_k`` is the
        rank-one ``p x p`` matrix ``c_k L_k``.  Kernel poles follow as
        ``sigma0 - 1/lambda_k`` (see :meth:`kernel_poles`).  For
        symmetric (SyMPVL) models the residues are symmetric PSD
        whenever the section-5 guarantee holds.
        """
        eigenvalues, vectors = np.linalg.eig(self.t)
        c_rows = (self._rho_t_delta @ vectors).T
        l_rows = np.linalg.solve(vectors, self.rho)
        return [
            (eigenvalues[k], np.outer(c_rows[k], l_rows[k]))
            for k in range(eigenvalues.size)
        ]

    def moments(self, count: int) -> list[np.ndarray]:
        """Taylor coefficients of the kernel about ``sigma0``:
        ``H_n(sigma0 + u) = sum_k M_k u^k`` with
        ``M_k = rho^T Delta (-T)^k rho``."""
        out: list[np.ndarray] = []
        power = self.rho.copy()
        for k in range(count):
            moment = self._rho_t_delta @ power
            if k == 0 and self.direct is not None:
                moment = moment + self.direct
            out.append(moment)
            power = -self.t @ power
        return out

    # ------------------------------------------------------------------
    # properties of the model
    # ------------------------------------------------------------------
    def is_stable(self, tol: float = 1e-8) -> bool:
        """All physical poles in the closed left half plane (section 5.1).

        The tolerance is relative to the model's frequency scale (pole
        magnitudes and the expansion point): a pole computed at
        ``+1e-6`` rad/s on a model expanded at ``1e9`` rad/s is a pole
        at the origin up to roundoff (the paper's allowed simple pole
        at ``s = 0``), not an instability.
        """
        poles = self.poles()
        if poles.size == 0:
            return True
        sigma0_scale = abs(self.sigma0)
        if self.transfer.sigma_power == 2:
            sigma0_scale = float(np.sqrt(sigma0_scale))
        scale = max(1.0, float(np.abs(poles).max()), sigma0_scale)
        return bool(poles.real.max() <= tol * scale)

    def passivity_margin(self, s_samples: np.ndarray) -> float:
        """Smallest eigenvalue of the Hermitian part of ``Z_n(s)`` over
        the given right-half-plane / imaginary-axis samples.

        A non-negative margin on a dense ``j omega`` grid is the
        numerical counterpart of condition (iii) of section 5.2.
        """
        z = self.impedance(np.asarray(s_samples))
        margin = np.inf
        for zk in z:
            hermitian = 0.5 * (zk + zk.conj().T)
            margin = min(margin, float(np.linalg.eigvalsh(hermitian).min()))
        return margin

    def is_passive(self, s_samples: np.ndarray, tol: float = 1e-9) -> bool:
        """Sampled positive-real test (see :meth:`passivity_margin`)."""
        z_scale = max(
            1.0, float(np.abs(self.impedance(np.asarray(s_samples))).max())
        )
        return self.passivity_margin(s_samples) >= -tol * z_scale

    # ------------------------------------------------------------------
    # realizations
    # ------------------------------------------------------------------
    def to_state_space(self) -> StateSpace:
        """Time-domain realization, eq. (23).

        Only meaningful for ``sigma = s`` models (RC/RL/RLC); for LC
        models the kernel variable is ``s**2`` and a first-order
        realization of the kernel does not directly integrate in time.

        With a nonzero shift the conductance part becomes
        ``Gr = Delta^{-1} - sigma0 T Delta^{-1}`` so that
        ``Gr + sigma Cr = Delta^{-1} + (sigma - sigma0) T Delta^{-1}``.
        """
        if self.transfer.sigma_power != 1:
            raise ReductionError(
                "state-space realization requires sigma = s (not LC form)"
            )
        delta_inv = np.linalg.inv(self.delta)
        cr = self.t @ delta_inv
        gr = delta_inv - self.sigma0 * cr
        lr = self.output.copy() if self.output is not None else self.rho.copy()
        return StateSpace(
            gr=gr,
            cr=cr,
            br=self.rho.copy(),
            lr=lr,
            d=None if self.direct is None else self.direct.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReducedOrderModel(order={self.order}, ports={self.num_ports}, "
            f"N={self.source_size}, sigma0={self.sigma0:.3e}, "
            f"guaranteed={self.guaranteed_stable_passive})"
        )
