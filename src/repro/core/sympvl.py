"""SyMPVL: the paper's main algorithm.

Pipeline (paper sections 3-4): factor ``Ghat = G + sigma0 C`` as
``M J M^T``, run the symmetric block-Lanczos process on
``K = J^{-1} M^{-1} C M^{-T}`` with starting block ``J^{-1} M^{-1} B``,
and assemble the matrix-Pade reduced-order model of eq. (19).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.circuits.mna import MNASystem
from repro.core.lanczos import LanczosOptions, symmetric_block_lanczos
from repro.core.model import ReducedOrderModel
from repro.errors import FactorizationError, ReductionError
from repro.linalg.factorization import SymmetricFactorization, factor_symmetric
from repro.linalg.operators import LanczosOperator

__all__ = ["sympvl", "default_shift", "resolve_shift"]


def _enforce_psd(t: np.ndarray, rtol: float = 1e-5) -> np.ndarray:
    """Restore the exact-arithmetic PSD structure of ``T`` (eq. 21).

    On the guaranteed path ``T = V^T A V`` with ``A`` PSD, so ``T`` is
    symmetric PSD in exact arithmetic; triangular-solve roundoff can
    leave eigenvalues at ``-eps * kappa`` scale, which would map to
    spurious unstable poles (section 5.1).  Symmetrize and clip only
    *small* negative eigenvalues; a large negative eigenvalue would
    indicate a real bug and is left for the certification to flag.
    """
    sym = 0.5 * (t + t.T)
    eigenvalues, vectors = np.linalg.eigh(sym)
    scale = float(np.abs(eigenvalues).max()) if eigenvalues.size else 0.0
    if scale == 0.0:
        return sym
    negative = eigenvalues < 0.0
    small = eigenvalues > -rtol * scale
    clip = negative & small
    if not clip.any() or not small.all():
        return sym
    eigenvalues = np.where(clip, 0.0, eigenvalues)
    return (vectors * eigenvalues) @ vectors.T


def default_shift(system: MNASystem) -> float:
    """Heuristic expansion point when ``G`` is singular (paper eq. 26).

    Uses the Frobenius-norm ratio ``|G| / |C|`` divided by the system
    size.  The raw ratio lands near the *per-element* corner frequency
    (in the kernel variable: ``rad/s`` for RC/RL, ``(rad/s)^2`` for
    LC); the slowest *global* mode of a distributed structure is slower
    by roughly the number of stages, hence the ``1/N`` factor.  Pade
    accuracy concentrates around the expansion point, so callers who
    know their frequency band should pass an explicit mid-band shift
    instead of relying on this heuristic.
    """
    g_norm = sp.linalg.norm(system.G)
    c_norm = sp.linalg.norm(system.C)
    if c_norm == 0.0:
        raise ReductionError(
            "C is zero: the transfer function is constant; nothing to reduce"
        )
    if g_norm == 0.0:
        return 1.0
    return float(g_norm / c_norm / max(system.size, 1))


def resolve_shift(
    system: MNASystem,
    shift: float | str,
    factor_method: str = "auto",
    *,
    monitor=None,
    factor_fn=None,
) -> tuple[float, SymmetricFactorization]:
    """Pick the expansion point and factor ``G + sigma0 C``.

    ``shift="auto"`` tries ``sigma0 = 0`` first and falls back to
    :func:`default_shift` when the unshifted ``G`` cannot be factored
    (singular -- e.g. the LC PEEC circuit of section 7.1, or RC
    interconnect with no resistive path to ground).

    ``factor_fn`` replaces :func:`repro.linalg.factor_symmetric` (the
    fault-injection seam); ``monitor`` records each candidate attempt
    (``shift.candidate`` events).
    """
    if factor_fn is None:
        factor_fn = factor_symmetric
    definite_hint = True if system.psd_guaranteed else False
    if shift == "auto":
        candidates: list[float] = [0.0, default_shift(system)]
    elif isinstance(shift, str):
        raise ReductionError(f"unknown shift policy {shift!r}")
    else:
        candidates = [float(shift)]
    last_error: Exception | None = None
    for sigma0 in candidates:
        g_hat = system.shifted_g(sigma0)
        try:
            factorization = factor_fn(
                g_hat,
                method=factor_method,
                assume_definite=definite_hint if factor_method == "auto" else None,
                monitor=monitor,
            )
            if monitor is not None:
                monitor.record(
                    "shift.candidate", sigma0=sigma0, ok=True,
                    method=factorization.method,
                )
            return sigma0, factorization
        except FactorizationError as exc:
            if monitor is not None:
                monitor.record(
                    "shift.candidate", sigma0=sigma0, ok=False, error=str(exc)
                )
            last_error = exc
    raise ReductionError(
        f"could not factor G + sigma0*C for any candidate shift: {last_error}"
    ) from last_error


def sympvl(
    system: MNASystem,
    order: int,
    *,
    shift: float | str = "auto",
    options: LanczosOptions | None = None,
    factor_method: str = "auto",
    monitor=None,
    factor_fn=None,
    operator_wrapper=None,
) -> ReducedOrderModel:
    """Compute an ``order``-state matrix-Pade reduced model of ``system``.

    Parameters
    ----------
    system:
        Output of :func:`repro.circuits.assemble_mna`.
    order:
        Number of Lanczos states ``n``; the model matches at least
        ``2 * floor(n / p)`` kernel moments about the expansion point
        (eq. 14), more if deflation occurs.
    shift:
        Expansion point ``sigma0`` in the *kernel* variable (for LC
        circuits that is ``s**2``); ``"auto"`` tries 0 then a heuristic
        (paper eq. 26 frequency shift).
    options:
        Lanczos tuning (deflation/look-ahead tolerances).
    factor_method:
        Forwarded to :func:`repro.linalg.factor_symmetric`.
    monitor:
        Optional :class:`repro.robustness.health.HealthMonitor`; threaded
        through the factorization and the Lanczos process.
    factor_fn:
        Replacement for :func:`repro.linalg.factor_symmetric` (the
        fault-injection / instrumentation seam).
    operator_wrapper:
        Optional callable applied to the :class:`LanczosOperator` before
        the iteration starts (fault injection, perturbed restarts).

    Returns
    -------
    ReducedOrderModel
        With ``guaranteed_stable_passive`` set when the paper's
        section-5 hypotheses hold (PSD pencil, ``J = I``, real
        non-negative shift).
    """
    if system.num_ports < 1:
        raise ReductionError("system has no ports")
    if order < system.num_ports:
        raise ReductionError(
            f"order {order} is below the port count {system.num_ports}; "
            "the matrix-Pade form (eq. 19) needs n >= p steps"
        )
    sigma0, factorization = resolve_shift(
        system, shift, factor_method, monitor=monitor, factor_fn=factor_fn
    )
    operator = LanczosOperator(factorization, system.C, system.B)
    if operator_wrapper is not None:
        operator = operator_wrapper(operator)
    result = symmetric_block_lanczos(operator, order, options, monitor=monitor)
    guaranteed = (
        system.psd_guaranteed
        and factorization.j_is_identity
        and sigma0 >= 0.0
    )
    t_matrix = result.t
    if guaranteed:
        t_matrix = _enforce_psd(t_matrix)
    return ReducedOrderModel(
        t=t_matrix,
        delta=result.delta,
        rho=result.rho,
        sigma0=sigma0,
        transfer=system.transfer,
        port_names=list(system.port_names),
        source_size=system.size,
        guaranteed_stable_passive=guaranteed,
        factorization_method=factorization.method,
        metadata={
            "lanczos": result,
            "deflations": len(result.deflations),
            "exhausted": result.exhausted,
            "formulation": system.formulation,
        },
    )
