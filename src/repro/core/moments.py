"""Exact moment computation for verification and for the AWE baseline.

The kernel ``H(sigma) = B^T (G + sigma C)^{-1} B`` expanded about
``sigma0`` reads ``H(sigma0 + u) = sum_k M_k u^k`` with

``M_k = (-1)^k B^T (Ghat^{-1} C)^k Ghat^{-1} B``,  ``Ghat = G + sigma0 C``.

These are the quantities AWE generates explicitly (paper section 3.1,
refs [13, 14]) and the quantities any ``n``-th matrix-Pade approximant
must match up to order ``q(n) >= 2 * floor(n/p)`` (eq. 14) -- the test
suite's main oracle.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.circuits.mna import MNASystem
from repro.errors import FactorizationError, ReductionError
from repro.linalg.utils import checked_splu

__all__ = ["exact_moments", "moment_match_count"]


def exact_moments(
    system: MNASystem, count: int, sigma0: float = 0.0
) -> list[np.ndarray]:
    """First ``count`` kernel moments ``M_0 .. M_{count-1}`` about ``sigma0``.

    Uses one sparse LU of ``G + sigma0 C`` and ``count`` triangular
    solves; each returned moment is a dense ``p x p`` array.

    Raises
    ------
    ReductionError
        When ``G + sigma0 C`` is singular (pick a different expansion
        point, paper eq. 26).
    """
    if count < 1:
        return []
    g_hat = sp.csc_matrix(system.shifted_g(sigma0))
    try:
        lu = checked_splu(g_hat)
    except FactorizationError as exc:
        raise ReductionError(
            f"G + sigma0 C is singular at sigma0={sigma0}; "
            "choose a nonzero expansion shift (paper eq. 26)"
        ) from exc
    c = system.C.tocsr()
    b = system.B
    moments: list[np.ndarray] = []
    x = lu.solve(b)
    for _ in range(count):
        moments.append(b.T @ x)
        x = -lu.solve(c @ x)
    return moments


def moment_match_count(
    reduced_moments: list[np.ndarray],
    exact: list[np.ndarray],
    rtol: float = 1e-6,
) -> int:
    """How many leading moments agree (relative Frobenius error < rtol).

    The scale reference is the largest exact-moment norm seen so far,
    which keeps the comparison meaningful when moments grow geometrically.
    """
    matched = 0
    scale = 0.0
    for reduced, exact_k in zip(reduced_moments, exact):
        scale = max(scale, float(np.linalg.norm(exact_k)))
        if scale == 0.0:
            matched += 1
            continue
        err = float(np.linalg.norm(reduced - exact_k)) / scale
        if err > rtol:
            break
        matched += 1
    return matched
