"""MPVL baseline: general (two-sided) block-Lanczos matrix-Pade reduction.

MPVL (paper ref. [6]) is the predecessor algorithm SyMPVL specializes:
it applies to *any* linear system via a two-sided (bi-orthogonal) block
Lanczos process, maintaining separate left and right vector sequences.
For the symmetric matrices of RLC circuits the two sequences coincide
up to the ``J`` metric, which is exactly the redundancy SyMPVL removes
(half the memory and matrix products).  This implementation keeps the
two sequences explicitly, so the cross-validation tests can confirm
that MPVL and SyMPVL produce the same matrix-Pade approximant while the
benchmarks show the cost difference.

Deflation is supported; look-ahead is not (a serious breakdown raises
:class:`BreakdownError`) -- acceptable for a baseline, and documented
in DESIGN.md.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.circuits.mna import MNASystem
from repro.core.model import ReducedOrderModel
from repro.errors import BreakdownError, FactorizationError, ReductionError
from repro.linalg.utils import checked_splu

__all__ = ["mpvl"]


def mpvl(
    system: MNASystem,
    order: int,
    *,
    sigma0: float = 0.0,
    deflation_tol: float = 1e-10,
) -> ReducedOrderModel:
    """Two-sided block-Lanczos matrix-Pade reduction (MPVL, ref. [6]).

    Builds bi-orthogonal bases ``W^T V = I`` of the right Krylov space
    of ``K = Ghat^{-1} C`` (start ``Ghat^{-1} B``) and the left Krylov
    space of ``K^T`` (start ``B``), then forms

    ``T = W^T K V``, ``rho = W^T Ghat^{-1} B``, ``eta = V^T B``,

    with ``Z_n(sigma) = eta^T (I + (sigma - sigma0) T)^{-1} rho``.  The
    result is packaged as a :class:`ReducedOrderModel` with
    ``delta = I`` and a symmetrized ``rho`` when ``eta == rho`` (the
    symmetric case); otherwise evaluation uses the general pair via the
    metadata hook.

    Raises
    ------
    BreakdownError
        On a (near-)singular bi-orthogonality matrix, which SyMPVL's
        look-ahead would have absorbed.
    """
    if order < 1:
        raise ReductionError("order must be >= 1")
    g_hat = sp.csc_matrix(system.shifted_g(sigma0))
    try:
        lu = checked_splu(g_hat)
    except FactorizationError as exc:
        raise ReductionError(f"G + sigma0 C singular at sigma0={sigma0}") from exc
    lu_t = spla.splu(g_hat.T.tocsc())
    c = system.C.tocsr()
    c_t = system.C.T.tocsr()

    def apply_right(x: np.ndarray) -> np.ndarray:
        return lu.solve(c @ x)

    def apply_left(x: np.ndarray) -> np.ndarray:
        return c_t @ lu_t.solve(x)

    right: list[np.ndarray] = []
    left: list[np.ndarray] = []

    r_block = [lu.solve(system.B[:, j]) for j in range(system.B.shape[1])]
    l_block = [system.B[:, j].copy() for j in range(system.B.shape[1])]
    r_queue = list(r_block)
    l_queue = list(l_block)
    r_ref = [max(np.linalg.norm(x), 1e-300) for x in r_queue]
    l_ref = [max(np.linalg.norm(x), 1e-300) for x in l_queue]

    while len(right) < order and r_queue and l_queue:
        v = r_queue.pop(0)
        w = l_queue.pop(0)
        ref_v = r_ref.pop(0)
        ref_w = l_ref.pop(0)
        # bi-orthogonalize twice against existing pairs
        for _ in range(2):
            for vk, wk in zip(right, left):
                v = v - vk * (wk @ v)
                w = w - wk * (vk @ w)
        nv = np.linalg.norm(v)
        nw = np.linalg.norm(w)
        if nv <= deflation_tol * ref_v or nw <= deflation_tol * ref_w:
            continue  # deflate the pair
        dot = (w @ v)
        if abs(dot) <= 1e-12 * nv * nw:
            raise BreakdownError(
                "two-sided Lanczos breakdown (w^T v ~ 0); "
                "SyMPVL's look-ahead handles this case"
            )
        v = v / nv
        w = w / (dot / nv)  # so that w^T v = 1
        right.append(v)
        left.append(w)
        r_queue.append(apply_right(v))
        l_queue.append(apply_left(w))
        r_ref.append(max(np.linalg.norm(r_queue[-1]), 1e-300))
        l_ref.append(max(np.linalg.norm(l_queue[-1]), 1e-300))

    if not right:
        raise ReductionError("MPVL produced no vectors")
    v_mat = np.column_stack(right)
    w_mat = np.column_stack(left)
    kv = np.column_stack([apply_right(v_mat[:, m]) for m in range(v_mat.shape[1])])
    t = w_mat.T @ kv
    rho = w_mat.T @ lu.solve(system.B)
    eta = v_mat.T @ system.B

    # General (non-symmetric) output functional:
    # Z = eta^T (I + uT)^{-1} rho.
    return ReducedOrderModel(
        t=t,
        delta=np.eye(t.shape[0]),
        rho=rho,
        sigma0=sigma0,
        transfer=system.transfer,
        port_names=list(system.port_names),
        source_size=system.size,
        guaranteed_stable_passive=False,
        factorization_method="splu",
        metadata={"algorithm": "mpvl"},
        output=eta,
    )
