"""SyPVL: the single-input single-output special case (paper ref. [8]).

For ``p = 1`` the block-Lanczos process degenerates to the classical
symmetric Lanczos recurrence and the matrix-Pade approximant to the
scalar Pade approximant of eq. (12).  The implementation simply invokes
SyMPVL on the one-port system; this module exists to mirror the paper's
naming and to host the scalar-specific conveniences.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.mna import MNASystem
from repro.core.lanczos import LanczosOptions
from repro.core.model import ReducedOrderModel
from repro.core.sympvl import sympvl
from repro.errors import ReductionError

__all__ = ["sypvl", "scalar_impedance"]


def sypvl(
    system: MNASystem,
    order: int,
    *,
    shift: float | str = "auto",
    options: LanczosOptions | None = None,
    factor_method: str = "auto",
    monitor=None,
    factor_fn=None,
    operator_wrapper=None,
) -> ReducedOrderModel:
    """Reduce a one-port system (scalar Pade via symmetric Lanczos).

    The ``monitor`` / ``factor_fn`` / ``operator_wrapper`` hooks are
    forwarded to :func:`sympvl` unchanged (health monitoring and fault
    injection work identically on the scalar path).

    Raises
    ------
    ReductionError
        If the system has more than one port (use :func:`sympvl`).
    """
    if system.num_ports != 1:
        raise ReductionError(
            f"sypvl requires exactly one port, got {system.num_ports}; "
            "use sympvl for multi-ports"
        )
    return sympvl(
        system,
        order,
        shift=shift,
        options=options,
        factor_method=factor_method,
        monitor=monitor,
        factor_fn=factor_fn,
        operator_wrapper=operator_wrapper,
    )


def scalar_impedance(model: ReducedOrderModel, s: complex | np.ndarray):
    """Evaluate a one-port model as a scalar (array) instead of 1x1 blocks."""
    if model.num_ports != 1:
        raise ReductionError("scalar_impedance requires a one-port model")
    z = model.impedance(s)
    if z.ndim == 2:
        return z[0, 0]
    return z[:, 0, 0]
