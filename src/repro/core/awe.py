"""AWE-style explicit-moment Pade approximation (the unstable baseline).

Asymptotic Waveform Evaluation (paper refs. [13, 14]) computes the same
Pade approximant as PVL/SyPVL, but from explicitly generated moments: a
Hankel system is solved for the denominator coefficients and the poles
are the roots of that polynomial.  As the paper notes (section 3.1),
this is "inherently numerically unstable ... only for very moderate
values of n, such as n < 10" -- the ablation benchmark ABL1 reproduces
exactly that breakdown against the Lanczos-based route.

The implementation is scalar (per transfer-function entry); for a
multi-port it approximates one chosen ``(i, j)`` entry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.mna import MNASystem, TransferMap
from repro.core.moments import exact_moments
from repro.errors import ReductionError

__all__ = ["AWEModel", "awe"]


@dataclass
class AWEModel:
    """Scalar Pade approximant in pole-residue (Foster) form.

    ``H_n(sigma0 + u) = const + sum_k residues[k] / (u - poles[k])``,
    evaluated through the same :class:`TransferMap` convention as the
    Lanczos models.
    """

    poles: np.ndarray
    residues: np.ndarray
    constant: float
    sigma0: float
    transfer: TransferMap
    entry: tuple[int, int]
    order: int
    hankel_condition: float

    def kernel(self, sigma: complex | np.ndarray) -> np.ndarray:
        """Evaluate the scalar kernel at ``sigma`` (scalar or array)."""
        sigma_arr = np.atleast_1d(np.asarray(sigma, dtype=complex))
        u = sigma_arr - self.sigma0
        out = np.full(u.shape, complex(self.constant))
        for pole, residue in zip(self.poles, self.residues):
            out = out + residue / (u - pole)
        if np.isscalar(sigma) or np.asarray(sigma).ndim == 0:
            return out[0]
        return out

    def impedance(self, s: complex | np.ndarray) -> np.ndarray:
        """Physical impedance entry via the transfer map."""
        value = self.kernel(self.transfer.sigma(np.asarray(s)))
        return self.transfer.prefactor(np.asarray(s)) * value

    def is_stable(self, tol: float = 1e-8) -> bool:
        """All kernel poles map to the closed left half s-plane."""
        sigma_poles = self.poles + self.sigma0
        if self.transfer.sigma_power == 2:
            s_poles = np.concatenate(
                [np.sqrt(sigma_poles.astype(complex)),
                 -np.sqrt(sigma_poles.astype(complex))]
            )
        else:
            s_poles = sigma_poles
        if s_poles.size == 0:
            return True
        scale = max(1.0, float(np.abs(s_poles).max()))
        return bool(s_poles.real.max() <= tol * scale)


def awe(
    system: MNASystem,
    order: int,
    *,
    sigma0: float = 0.0,
    entry: tuple[int, int] = (0, 0),
    moments: list[np.ndarray] | None = None,
) -> AWEModel:
    """Explicit-moment Pade approximant of one transfer-function entry.

    Parameters
    ----------
    system:
        Assembled MNA system.
    order:
        Number of poles ``n`` (matches ``2n`` moments).
    sigma0:
        Expansion point in the kernel variable.
    entry:
        Which ``(row, col)`` of the ``p x p`` transfer matrix to fit.
    moments:
        Precomputed exact moments (saves refactoring in sweeps).

    Raises
    ------
    ReductionError
        When the Hankel system is exactly singular.

    Notes
    -----
    Kernel moments ``m_0 .. m_{2n-1}`` about ``sigma0`` define the Pade
    form ``H(u) = P_{n-1}(u) / Q_n(u)``.  The denominator coefficients
    solve the ``n x n`` Hankel system; its condition number (reported in
    ``hankel_condition``) grows geometrically with ``n``, which is the
    numerical-instability mechanism the Lanczos process avoids.
    """
    if order < 1:
        raise ReductionError("AWE order must be >= 1")
    if moments is None:
        moments = exact_moments(system, 2 * order, sigma0)
    if len(moments) < 2 * order:
        raise ReductionError("not enough moments supplied")
    i, j = entry
    m = np.array([mk[i, j] for mk in moments], dtype=float)

    # Hankel system for denominator q(u) = 1 + q_1 u + ... + q_n u^n:
    # sum_{l=1..n} m_{k-l} q_l = -m_k  for k = n .. 2n-1
    n = order
    hankel = np.empty((n, n))
    for row, k in enumerate(range(n, 2 * n)):
        for col in range(1, n + 1):
            hankel[row, col - 1] = m[k - col]
    rhs = -m[n : 2 * n]
    try:
        q = np.linalg.solve(hankel, rhs)
    except np.linalg.LinAlgError as exc:
        raise ReductionError(
            f"singular Hankel system at AWE order {n}"
        ) from exc
    condition = float(np.linalg.cond(hankel))

    # poles = roots of q(u); companion of u^n * (1 + q_1/u ... ) form
    denominator = np.concatenate([q[::-1], [1.0]])  # ascending? see below
    # q(u) = 1 + q_1 u + ... + q_n u^n ; np.roots expects descending powers
    roots = np.roots(np.concatenate([q[::-1], [1.0]]))
    del denominator

    # residues from the first n moments: H(u) = sum r_k / (u - pole_k)
    # with expansion sum_k r_k * (-1/pole_k) * sum_l (u/pole_k)^l
    # => m_l = -sum_k r_k / pole_k^{l+1}
    vander = np.empty((n, n), dtype=complex)
    for l in range(n):
        vander[l] = -1.0 / roots ** (l + 1)
    try:
        residues = np.linalg.solve(vander, m[:n].astype(complex))
    except np.linalg.LinAlgError as exc:
        raise ReductionError(
            f"residue system singular at AWE order {n}"
        ) from exc

    return AWEModel(
        poles=roots,
        residues=residues,
        constant=0.0,
        sigma0=sigma0,
        transfer=system.transfer,
        entry=entry,
        order=n,
        hankel_condition=condition,
    )
