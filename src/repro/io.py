"""Saving and loading reduced-order models (``.npz`` archives).

A macromodel is typically extracted once and consumed by many
downstream simulations; these helpers persist everything needed to
re-evaluate and re-stamp a :class:`ReducedOrderModel`.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.circuits.mna import TransferMap
from repro.core.model import ReducedOrderModel
from repro.errors import ReproError

__all__ = ["save_model", "load_model"]

_FORMAT_VERSION = 1


def save_model(model: ReducedOrderModel, path: str | pathlib.Path) -> None:
    """Serialize ``model`` to a NumPy ``.npz`` archive.

    The Lanczos debug metadata is *not* stored (it references the full
    factorization); everything needed for evaluation, synthesis, and
    stamping is.
    """
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "t": model.t,
        "delta": model.delta,
        "rho": model.rho,
        "sigma0": np.array(model.sigma0),
        "sigma_power": np.array(model.transfer.sigma_power),
        "prefactor_power": np.array(model.transfer.prefactor_power),
        "port_names": np.array(model.port_names, dtype=object),
        "source_size": np.array(model.source_size),
        "guaranteed": np.array(model.guaranteed_stable_passive),
        "factorization_method": np.array(model.factorization_method),
    }
    if model.direct is not None:
        payload["direct"] = model.direct
    if model.output is not None:
        payload["output"] = model.output
    np.savez(path, **payload)


def load_model(path: str | pathlib.Path) -> ReducedOrderModel:
    """Load a model previously written by :func:`save_model`.

    Raises
    ------
    ReproError
        When the archive is missing required fields or has an
        unsupported format version.
    """
    with np.load(path, allow_pickle=True) as archive:
        try:
            version = int(archive["format_version"])
            if version > _FORMAT_VERSION:
                raise ReproError(
                    f"model archive format {version} is newer than this "
                    f"library supports ({_FORMAT_VERSION})"
                )
            model = ReducedOrderModel(
                t=archive["t"],
                delta=archive["delta"],
                rho=archive["rho"],
                sigma0=float(archive["sigma0"]),
                transfer=TransferMap(
                    sigma_power=int(archive["sigma_power"]),
                    prefactor_power=int(archive["prefactor_power"]),
                ),
                port_names=[str(n) for n in archive["port_names"]],
                source_size=int(archive["source_size"]),
                guaranteed_stable_passive=bool(archive["guaranteed"]),
                factorization_method=str(archive["factorization_method"]),
                direct=archive["direct"] if "direct" in archive else None,
                output=archive["output"] if "output" in archive else None,
            )
        except KeyError as exc:
            raise ReproError(
                f"model archive {path} is missing field {exc}"
            ) from exc
    return model
