"""Saving and loading macromodels (``.npz`` archives).

A macromodel is typically extracted once and consumed by many
downstream simulations; these helpers persist everything needed to
re-evaluate and re-stamp it.  Two model families are supported:

* :class:`~repro.core.model.ReducedOrderModel` -- the Lanczos
  ``(T, Delta, rho)`` triple (format v1, still written and read);
* :class:`~repro.fitting.FittedModel` -- the pole-residue form produced
  by vector fitting (added in format v2).

Format history: v1 archives carry no ``kind`` field and are always
reduced-order models; v2 adds ``kind`` (``"rom"`` / ``"fitted"``) and
the fitted payload.  :func:`load_model` reads both.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.circuits.mna import TransferMap
from repro.core.model import ReducedOrderModel
from repro.errors import ReproError

__all__ = ["save_model", "load_model"]

_FORMAT_VERSION = 2


def _rom_payload(model: ReducedOrderModel) -> dict[str, np.ndarray]:
    payload: dict[str, np.ndarray] = {
        "kind": np.array("rom"),
        "t": model.t,
        "delta": model.delta,
        "rho": model.rho,
        "sigma0": np.array(model.sigma0),
        "sigma_power": np.array(model.transfer.sigma_power),
        "prefactor_power": np.array(model.transfer.prefactor_power),
        "port_names": np.array(model.port_names, dtype=object),
        "source_size": np.array(model.source_size),
        "guaranteed": np.array(model.guaranteed_stable_passive),
        "factorization_method": np.array(model.factorization_method),
    }
    if model.direct is not None:
        payload["direct"] = model.direct
    if model.output is not None:
        payload["output"] = model.output
    return payload


def _fitted_payload(model) -> dict[str, np.ndarray]:
    payload: dict[str, np.ndarray] = {
        "kind": np.array("fitted"),
        "poles": np.asarray(model.poles, dtype=complex),
        "residues": np.asarray(model.residues, dtype=complex),
        "sigma_power": np.array(model.transfer.sigma_power),
        "prefactor_power": np.array(model.transfer.prefactor_power),
        "port_names": np.array(model.port_names, dtype=object),
        "parameter": np.array(model.parameter),
        "z0": np.array(float(model.z0)),
        # JSON round-trip keeps only the plain-data part of metadata
        # (fit reports, passivity certificates), dropping live objects
        "metadata_json": np.array(
            json.dumps(model.metadata, default=repr, sort_keys=True)
        ),
    }
    if model.direct is not None:
        payload["direct"] = model.direct
    return payload


def save_model(model, path: str | pathlib.Path) -> None:
    """Serialize a reduced-order or fitted model to a ``.npz`` archive.

    The Lanczos debug metadata is *not* stored (it references the full
    factorization); everything needed for evaluation, synthesis, and
    stamping is.
    """
    if hasattr(model, "t") and hasattr(model, "rho"):
        payload = _rom_payload(model)
    elif hasattr(model, "poles") and hasattr(model, "residues") and not (
        callable(model.poles)
    ):
        payload = _fitted_payload(model)
    else:
        raise TypeError(
            f"cannot serialize object of type {type(model).__name__}: "
            "expected a ReducedOrderModel or a FittedModel"
        )
    payload["format_version"] = np.array(_FORMAT_VERSION)
    np.savez(path, **payload)


def _load_rom(archive) -> ReducedOrderModel:
    return ReducedOrderModel(
        t=archive["t"],
        delta=archive["delta"],
        rho=archive["rho"],
        sigma0=float(archive["sigma0"]),
        transfer=TransferMap(
            sigma_power=int(archive["sigma_power"]),
            prefactor_power=int(archive["prefactor_power"]),
        ),
        port_names=[str(n) for n in archive["port_names"]],
        source_size=int(archive["source_size"]),
        guaranteed_stable_passive=bool(archive["guaranteed"]),
        factorization_method=str(archive["factorization_method"]),
        direct=archive["direct"] if "direct" in archive else None,
        output=archive["output"] if "output" in archive else None,
    )


def _load_fitted(archive, path):
    from repro.fitting.model import FittedModel

    try:
        metadata = json.loads(str(archive["metadata_json"]))
    except (KeyError, json.JSONDecodeError):
        metadata = {}
    return FittedModel(
        poles=archive["poles"],
        residues=archive["residues"],
        direct=archive["direct"] if "direct" in archive else None,
        port_names=[str(n) for n in archive["port_names"]],
        parameter=str(archive["parameter"]),
        z0=float(archive["z0"]),
        transfer=TransferMap(
            sigma_power=int(archive["sigma_power"]),
            prefactor_power=int(archive["prefactor_power"]),
        ),
        metadata=metadata,
    )


def load_model(path: str | pathlib.Path):
    """Load a model previously written by :func:`save_model`.

    Returns a :class:`ReducedOrderModel` or a
    :class:`~repro.fitting.FittedModel` depending on the archive's
    ``kind``; v1 archives (no ``kind``) are always reduced-order
    models.

    Raises
    ------
    ReproError
        When the archive is missing required fields or has an
        unsupported format version.
    """
    with np.load(path, allow_pickle=True) as archive:
        try:
            version = int(archive["format_version"])
            if version > _FORMAT_VERSION:
                raise ReproError(
                    f"model archive format {version} is newer than this "
                    f"library supports ({_FORMAT_VERSION})"
                )
            kind = str(archive["kind"]) if "kind" in archive else "rom"
            if kind == "rom":
                model = _load_rom(archive)
            elif kind == "fitted":
                model = _load_fitted(archive, path)
            else:
                raise ReproError(
                    f"model archive {path} has unknown kind {kind!r}"
                )
        except KeyError as exc:
            raise ReproError(
                f"model archive {path} is missing field {exc}"
            ) from exc
    return model
