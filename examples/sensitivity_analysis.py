"""Which parasitics actually matter?  Adjoint sensitivity on a bus.

The paper's section-7.3 circuit exists for cross-talk analysis.  This
example goes one step further down the flow: given the coupled-bus
parasitic network, the adjoint sensitivities
``dZ(victim, aggressor)/d(element)`` rank which extracted capacitors
dominate the coupling -- the information a layout engineer acts on.
The ranking is then validated by direct perturbation, and the reduced
model is shown to track the perturbation without re-extraction error.

Run:  python examples/sensitivity_analysis.py
"""

import dataclasses

import numpy as np

import repro
from repro.analysis import Table, impedance_sensitivities


def main() -> None:
    net = repro.coupled_rc_bus(4, 25, driver_resistance=150.0)
    system = repro.assemble_mna(net)
    print(f"bus: {net!r}")

    # sensitivity of the victim<-aggressor coupling entry at mid-band
    s = 1j * 2.0e9
    aggressor, victim = 0, 1
    sensitivities = impedance_sensitivities(net, s)
    ranked = sorted(
        sensitivities.items(),
        key=lambda kv: abs(kv[1][victim, aggressor]),
        reverse=True,
    )

    table = Table(
        "top-8 elements by |dZ(victim, aggressor)/d value| at 2 Grad/s",
        ["element", "kind", "value", "|dZ21/dv|", "normalized |v dZ/dv|"],
    )
    for name, matrix in ranked[:8]:
        element = net[name]
        raw = abs(matrix[victim, aggressor])
        table.row(name, element.prefix, element.value, raw,
                  raw * abs(element.value))
    table.print()

    # validate the champion by brute-force perturbation (+5 %)
    champion = ranked[0][0]
    laggard = ranked[-1][0]

    def coupling_of(netlist):
        sysm = repro.assemble_mna(netlist)
        z = repro.ac_sweep(sysm, np.array([s])).z[0]
        return z[victim, aggressor]

    base = coupling_of(net)
    for name in (champion, laggard):
        perturbed = repro.Netlist()
        for el in net:
            if el.name == name:
                perturbed.add(
                    dataclasses.replace(el, value=el.value * 1.05)
                )
            else:
                perturbed.add(el)
        delta = coupling_of(perturbed) - base
        predicted = (
            sensitivities[name][victim, aggressor] * 0.05 * net[name].value
        )
        print(f"{name}: +5% value -> dZ21 = {delta:.4e} "
              f"(adjoint prediction {predicted:.4e})")

    # the reduced model tracks the perturbation
    model = repro.sympvl(system, order=12, shift=0.0)
    z_model = model.impedance(s)[victim, aggressor]
    print(f"\nreduced model (n = {model.order}) coupling at mid-band: "
          f"{z_model:.4e} vs exact {base:.4e} "
          f"({abs(z_model - base) / abs(base):.2e} relative)")


if __name__ == "__main__":
    main()
