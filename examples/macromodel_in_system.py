"""Macromodel workflow: extract once, stamp anywhere.

The paper's abstract promises that the reduced matrices "can be
'stamped' directly into the Jacobian matrix of a SPICE-type circuit
simulator".  This example walks the full macromodel life cycle:

1. extract a large RC interconnect block and reduce it with SyMPVL;
2. save the model to disk (``.npz``) as a reusable macromodel;
3. load it back and *stamp* it into a host circuit (a gate driver with
   source resistance and a receiver load) -- no synthesized netlist
   needed;
4. verify against the reference: the host merged with the full block.

Run:  python examples/macromodel_in_system.py
"""

import pathlib
import tempfile

import numpy as np

import repro
from repro.analysis import Table, ascii_plot
from repro.simulation import Step, transient_netlist


def main() -> None:
    # --- 1. the block: a 3-wire coupled RC bus section -----------------
    block = repro.coupled_rc_bus(3, 40, driver_resistance=200.0)
    system = repro.assemble_mna(block)
    model = repro.sympvl(system, order=18, shift=0.0)
    print(f"block: {block!r}")
    print(f"macromodel: {model} "
          f"(guaranteed stable/passive: {model.guaranteed_stable_passive})")

    # --- 2. persist / reload -------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "bus_macromodel.npz"
        repro.save_model(model, path)
        print(f"saved macromodel to {path.name} "
              f"({path.stat().st_size} bytes)")
        model = repro.load_model(path)

    # --- 3. the host: driver + receiver around the macromodel ----------
    host = repro.Netlist("driver + receiver")
    host.vsource("Vdrv", "gate_out", "0", 0.0)
    host.resistor("Rdrv", "gate_out", "agg", 120.0)   # driving gate
    host.capacitor("Crecv0", "agg", "0", 5e-15)
    host.capacitor("Crecv1", "vic", "0", 20e-15)      # victim receiver

    connections = {"in0": "agg", "in1": "vic", "in2": "far"}
    host.resistor("Rterm", "far", "0", 1e4)           # third wire terminated
    stamped = repro.stamp_reduced_model(host, model, connections)
    print(f"stamped system: {stamped.size} unknowns "
          f"(host + {model.order} model states + {model.num_ports} "
          "interface currents)")

    # --- 4. reference: host merged with the full block -----------------
    reference = repro.merge_netlists(host, block, connections)
    t = np.linspace(0.0, 3e-8, 3001)
    wave = Step(amplitude=1.0, rise=2e-10)
    full = transient_netlist(reference, {"Vdrv": wave}, t,
                             outputs=["agg", "vic"])
    fast = stamped.transient({"Vdrv": wave}, t, outputs=["agg", "vic"])

    table = Table("full block vs stamped macromodel",
                  ["system", "unknowns", "cpu s"])
    table.row("host + full block", full.stats["unknowns"],
              full.stats["cpu_seconds"])
    table.row("host + macromodel", fast.stats["unknowns"],
              fast.stats["cpu_seconds"])
    table.print()
    err = repro.transient_error(fast, full)
    print(f"waveform max relative deviation: {err['max_rel']:.2e}")

    print()
    print(ascii_plot(
        t * 1e9,
        {
            "aggressor (full)": full.signal("v(agg)"),
            "Aggressor (macro)": fast.signal("v(agg)"),
            "victim xtalk (full)": full.signal("v(vic)") * 20,
            "Victim xtalk (macro)": fast.signal("v(vic)") * 20,
        },
        title="driver/receiver waveforms; victim scaled 20x (x: ns)",
        logy=False,
    ))


if __name__ == "__main__":
    main()
