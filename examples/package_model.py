"""64-pin RF package reduction (paper section 7.2 / Figures 3-4).

Characterizes a 64-pin package as a 16-port (8 signal pins, external +
internal terminals), reduces it with SyMPVL at several orders, and
prints the voltage-to-voltage transfer curves the paper plots: external
pin 1 to internal pin 1 (through path) and to internal pin 2
(neighbor-coupling path).

This is a true RLC circuit: the MNA matrices are indefinite, the
factorization is Bunch-Kaufman (J != I), and stability is *not*
guaranteed by the section-5 theorems -- the example demonstrates the
post-processing (`stabilize`) path as well.

Run:  python examples/package_model.py   (about a minute)
"""

import numpy as np

import repro
from repro.analysis import Table, ascii_plot


def main() -> None:
    net = repro.package_model()  # paper scale: ~2000 MNA unknowns
    system = repro.assemble_mna(net)
    print(f"package model: {net!r}")
    print(f"MNA size N = {system.size}, ports = {system.num_ports}")

    band = 2 * np.pi * np.logspace(np.log10(5e7), np.log10(5e9), 80)
    s = 1j * band
    sigma0 = 2 * np.pi * 1.5e9  # expand mid-band
    print("computing exact 16-port response (direct sparse solves)...")
    exact = repro.ac_sweep(system, s)

    signal = net.port_names
    ext1, int1 = signal[0], signal[len(signal) // 2]
    int2 = signal[len(signal) // 2 + 1]

    table = Table(
        "package reduction: voltage-transfer accuracy vs order",
        ["order", "err pin1ext->pin1int", "err pin1ext->pin2int", "stable"],
    )
    curves = {}
    h_exact_11 = exact.voltage_transfer(int1, ext1)
    h_exact_12 = exact.voltage_transfer(int2, ext1)
    for order in (48, 64, 80):
        model = repro.sympvl(system, order=order, shift=sigma0)
        reduced = repro.model_sweep(model, s)
        h11 = reduced.voltage_transfer(int1, ext1)
        h12 = reduced.voltage_transfer(int2, ext1)
        err11 = repro.max_relative_error(h11, h_exact_11)
        err12 = repro.max_relative_error(h12, h_exact_12)
        table.row(order, err11, err12, model.is_stable(1e-6))
        if not model.is_stable(1e-6):
            fixed = repro.stabilize(model)
            assert fixed.is_stable(1e-6)
        curves[order] = (h11, h12)
    table.print()

    h11_80 = curves[80][0]
    print()
    print(ascii_plot(
        band / (2 * np.pi * 1e9),
        {
            "exact |H|": np.abs(h_exact_11),
            "n=80 |H|": np.abs(h11_80),
        },
        title=f"voltage transfer {ext1} -> {int1} (x: GHz)",
    ))
    print()
    print(ascii_plot(
        band / (2 * np.pi * 1e9),
        {
            "exact |H|": np.abs(h_exact_12),
            "n=80 |H|": np.abs(curves[80][1]),
        },
        title=f"coupling transfer {ext1} -> {int2} (x: GHz)",
    ))
    ratio = system.size / 80
    print(f"\nreduction: {system.size} -> 80 state variables "
          f"({ratio:.0f}x smaller), as in the paper's most accurate model")


if __name__ == "__main__":
    main()
