"""PEEC LC circuit reduction (paper section 7.1 / Figure 2).

An LC circuit from PEEC-style discretization of a conductor, with
long-range inductive coupling.  The nodal matrix ``G = A_l^T L^{-1} A_l``
is singular (no DC path to ground), so the reduction uses the frequency
shift of eq. (26) and works in the LC kernel variable ``sigma = s^2``.
The 2x2 transfer function couples the drive port with an inductor
*current* output (eq. 25, ``B = [a, l]``).

Run:  python examples/peec_lc.py
"""

import numpy as np

import repro
from repro.analysis import Table, ascii_plot
from repro.circuits.mna import lc_inductor_current_output, with_output_columns


def main() -> None:
    net = repro.peec_like_lc(n_cells=120, coupling_radius=8)
    repro.validate_netlist(net)
    system = repro.assemble_mna(net)
    print(f"PEEC-like LC circuit: {net!r}")
    print(f"LC nodal system size N = {system.size} "
          f"(kernel variable sigma = s^2)")

    # the paper's second "port": the current through a mid-line inductor
    mid = f"L{len(net.inductors) // 2}"
    l_col = lc_inductor_current_output(net, mid)
    two_port = with_output_columns(system, l_col, [f"i({mid})"])

    # reduce; the shift is chosen automatically because G is singular
    table = Table("PEEC reduction accuracy vs order",
                  ["order", "max rel err", "stable", "passivity certified"])
    s = 1j * np.linspace(1.5e9, 4e10, 120)
    exact = repro.ac_sweep(two_port, s)
    models = {}
    for order in (20, 35, 50):
        model = repro.sympvl(two_port, order=order)
        models[order] = model
        reduced = repro.model_sweep(model, s)
        err = repro.frequency_error(reduced, exact)["max_rel"]
        table.row(order, err, model.is_stable(),
                  repro.certify(model).certified)
    table.print()

    best = models[50]
    print(f"\nexpansion shift sigma0 = {best.sigma0:.3e} (s^2 units), "
          f"factorization: {best.factorization_method}")

    reduced = repro.model_sweep(best, s)
    print()
    print(ascii_plot(
        s.imag / (2 * np.pi * 1e9),
        {
            "exact |Z11|": np.abs(exact.entry(0, 0)),
            "reduced |Z11|": np.abs(reduced.entry(0, 0)),
        },
        title="input impedance magnitude (x axis: frequency, GHz)",
    ))

    # resonance structure: poles of the order-50 model on the j-omega axis
    poles = best.poles()
    physical = poles[np.abs(poles.imag) > 0]
    print(f"\norder-50 model resonances (|Im s| / 2 pi, GHz), first 8:")
    freqs = np.sort(np.unique(np.round(np.abs(physical.imag) / 2 / np.pi / 1e9, 4)))
    print("  " + ", ".join(f"{f:.3f}" for f in freqs[:8]))


if __name__ == "__main__":
    main()
