"""Crosstalk interconnect: reduce, synthesize, simulate (section 7.3 / Fig 5).

A 17-wire capacitively-coupled RC bus (about 1350 nodes and 33000
capacitors, the scale of the paper's extracted net) is reduced to an
n = 34 SyMPVL model, synthesized back into a small RC circuit, and both
the full and the synthesized circuits are simulated in the time domain.
The waveforms should be indistinguishable while the reduced circuit
simulates much faster -- the paper reports 132 s -> 2.15 s.

Run:  python examples/interconnect_crosstalk.py   (a few minutes)
"""

import numpy as np

import repro
from repro.analysis import Table, ascii_plot
from repro.simulation import Step


def main() -> None:
    net = repro.coupled_rc_bus(driver_resistance=100.0)  # paper scale
    stats = net.stats()
    print(f"interconnect: {stats['nodes']} nodes, {stats['resistors']} R, "
          f"{stats['capacitors']} C, {stats['ports']} ports")

    system = repro.assemble_mna(net)
    # driver resistors make G nonsingular: expand about sigma0 = 0 as the
    # paper does; n = 34 is the paper's reduced size (2 block iterations
    # of 17 ports)
    model = repro.sympvl(system, order=34, shift=0.0)
    print(f"reduced to n = {model.order} states "
          f"({model.reduction_ratio:.0f}x smaller), "
          f"guaranteed stable/passive: {model.guaranteed_stable_passive}")

    report = repro.synthesize_rc(model, prune_tol=1e-6)
    print(report.summary())
    syn_system = repro.assemble_mna(report.netlist)

    # drive wire 0 with a current step; observe the aggressor and the
    # neighboring victim wires
    t = np.linspace(0.0, 2.0e-8, 2001)
    drives = {"in0": Step(amplitude=1e-3, rise=2e-10)}
    print("\nsimulating full circuit...")
    full = repro.transient_ports(system, drives, t, label="full")
    print("simulating synthesized circuit...")
    syn = repro.transient_ports(syn_system, drives, t, label="synthesized")

    table = Table("transient comparison", ["circuit", "unknowns",
                                           "cpu seconds"])
    table.row("full", full.stats["unknowns"], full.stats["cpu_seconds"])
    table.row("synthesized", syn.stats["unknowns"], syn.stats["cpu_seconds"])
    table.print()
    speedup = full.stats["cpu_seconds"] / max(syn.stats["cpu_seconds"], 1e-12)
    print(f"speedup: {speedup:.1f}x (paper: 132 s / 2.15 s = 61x on 1998 "
          "hardware)")

    err = repro.transient_error(syn, full)
    print(f"waveform max relative deviation at n = 34: {err['max_rel']:.2e}")
    print("(our synthetic bus couples more densely than the paper's net; "
          "n = 68 brings the deviation to ~1e-3, i.e. indistinguishable)")

    print()
    print(ascii_plot(
        t * 1e9,
        {
            "full v(in0)": full.signal("v(in0)"),
            "synth v(in0)": syn.signal("v(in0)"),
            "xtalk full v(in1)": np.abs(full.signal("v(in1)")) + 1e-12,
        },
        title="aggressor and victim waveforms (x: time, ns)",
        logy=False,
    ))


if __name__ == "__main__":
    main()
