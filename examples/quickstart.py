"""Quickstart: reduce an RC interconnect 2-port with SyMPVL.

Build a 100-section RC delay line, compute an order-20 matrix-Pade
reduced model (a 5x size reduction, 100 states -> 20),
compare it against the exact frequency response, certify stability and
passivity by the paper's section-5 theorems, and synthesize an
equivalent RC circuit.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. build a circuit: 100-section RC line, ports at both ends
    net = repro.rc_ladder(100, resistance=500.0, capacitance=0.1e-12,
                          port_at_far_end=True)
    system = repro.assemble_mna(net)
    print(f"circuit: {net!r}")
    print(f"MNA size N = {system.size}, ports p = {system.num_ports}, "
          f"formulation = {system.formulation}")

    # 2. reduce: order-16 matrix-Pade model expanded at mid-band
    sigma0 = 5e8  # rad/s, near the band of interest
    model = repro.sympvl(system, order=20, shift=sigma0)
    print(f"\nreduced model: {model}")
    print(f"matches >= {2 * (model.order // model.num_ports)} kernel moments "
          f"about sigma0 = {model.sigma0:.2e}")

    # 3. compare against the exact response
    s = 1j * np.logspace(7.5, 9.3, 49)
    exact = repro.ac_sweep(system, s)
    reduced = repro.model_sweep(model, s)
    metrics = repro.frequency_error(reduced, exact)
    print(f"\nmax relative error over band: {metrics['max_rel']:.2e}")
    print(f"RMS dB error:                 {metrics['rms_db']:.2e} dB")

    from repro.analysis import ascii_plot

    print()
    print(ascii_plot(
        np.log10(s.imag),
        {
            "exact |Z21|": np.abs(exact.entry("out", "in")),
            "model |Z21|": np.abs(reduced.entry("out", "in")),
        },
        title="transfer impedance |Z21(j w)| (x axis: log10 omega)",
    ))

    # 4. the paper's section-5 guarantee, checked algebraically
    certificate = repro.certify(model)
    print(f"\nstability/passivity certificate: {certificate}")
    print(f"model.is_stable() = {model.is_stable()}")

    # 5. synthesize an equivalent RC circuit (paper section 6)
    report = repro.synthesize_rc(model, prune_tol=1e-9)
    print(f"\n{report.summary()}")
    syn_system = repro.assemble_mna(report.netlist)
    syn = repro.ac_sweep(syn_system, s, label="synthesized")
    round_trip = repro.frequency_error(syn, reduced)
    print(f"synthesized-vs-model round-trip error: {round_trip['max_rel']:.2e}")


if __name__ == "__main__":
    main()
