#!/usr/bin/env python
"""Concurrency smoke test for ``repro serve`` over stdio-JSONL.

Spawns the service as a subprocess with service faults armed
(``service.slow@reduce:3, service.drop@sweep:2``), fires ~50 mixed
requests at it concurrently (reductions, reduced and exact sweeps,
stats probes, malformed requests), and asserts:

* every request id gets exactly one response (zero hung requests);
* every response is either ``ok`` or carries a documented error code;
* dedup / retry / tier counters in the final ``stats`` are coherent;
* the process drains and exits cleanly within the timeout after a
  ``shutdown`` request.

Exit code 0 on success; non-zero with a diagnostic on any violation.
Used by the ``service-smoke`` CI job::

    python scripts/service_smoke.py [--requests 50] [--timeout 120]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent

NETLIST_A = """* rc ladder A
R1 1 2 1.0
C1 2 0 1e-9
R2 2 3 2.0
C2 3 0 2e-9
.port P1 1 0
.port P2 3 0
"""

NETLIST_B = """* rc ladder B
R1 1 2 5.0
C1 2 0 4e-10
R2 2 3 3.0
C2 3 0 1e-9
R3 3 4 2.0
C3 4 0 2e-9
.port P1 1 0
.port P2 4 0
"""

ERROR_CODES = {
    "bad_request", "overloaded", "deadline_exceeded", "reduction_failed",
    "simulation_failed", "shutting_down", "internal",
}


def build_requests(n: int) -> list[dict]:
    """A deterministic mixed workload of ``n`` requests."""
    requests: list[dict] = []
    for k in range(n):
        kind = k % 5
        netlist = NETLIST_A if k % 2 == 0 else NETLIST_B
        if kind == 0:
            requests.append({
                "id": f"red-{k}", "op": "reduce",
                "params": {"netlist": netlist, "order": 3 + (k % 2)},
            })
        elif kind == 1:
            requests.append({
                "id": f"swp-{k}", "op": "sweep",
                "params": {"netlist": netlist, "order": 3,
                           "band": [1e6, 1e9], "points": 12},
            })
        elif kind == 2:
            requests.append({
                "id": f"ext-{k}", "op": "sweep",
                "params": {"netlist": netlist, "order": 3,
                           "band": [1e6, 1e9], "points": 8, "exact": True},
            })
        elif kind == 3:
            requests.append({"id": f"sts-{k}", "op": "stats"})
        else:  # deliberately malformed: must answer, not hang
            requests.append({
                "id": f"bad-{k}", "op": "sweep",
                "params": {"netlist": netlist, "order": 3},
            })
    return requests


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args()

    requests = build_requests(args.requests)
    expected_ids = {r["id"] for r in requests} | {"final-stats", "bye"}

    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--max-concurrency", "4", "--max-pending", "256",
         "--inject-fault", "service.slow@reduce:3, service.drop@sweep:2"],
        cwd=REPO,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={**__import__("os").environ,
             "PYTHONPATH": str(REPO / "src")},
    )

    responses: dict[str, dict] = {}
    reader_errors: list[str] = []

    def read_responses():
        for line in process.stdout:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                reader_errors.append(f"non-JSON line: {line[:120]!r}")
                continue
            responses[str(payload.get("id"))] = payload

    reader = threading.Thread(target=read_responses, daemon=True)
    reader.start()

    started = time.monotonic()
    for request in requests:
        process.stdin.write(json.dumps(request) + "\n")
    process.stdin.write(json.dumps({"id": "final-stats", "op": "stats"}) + "\n")
    process.stdin.write(json.dumps({"id": "bye", "op": "shutdown"}) + "\n")
    process.stdin.flush()
    process.stdin.close()  # EOF lets the serve loop drain and exit

    try:
        process.wait(timeout=args.timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        print("FAIL: service did not shut down within "
              f"{args.timeout}s", file=sys.stderr)
        return 1
    reader.join(timeout=10)
    elapsed = time.monotonic() - started

    failures: list[str] = []
    if process.returncode != 0:
        failures.append(
            f"service exited with {process.returncode}; "
            f"stderr:\n{process.stderr.read()}"
        )
    missing = expected_ids - set(responses)
    if missing:
        failures.append(f"hung/unanswered requests: {sorted(missing)}")
    for rid, resp in responses.items():
        if resp.get("ok"):
            continue
        code = resp.get("error", {}).get("code")
        if code not in ERROR_CODES:
            failures.append(f"{rid}: undocumented error code {code!r}")
        if not (rid.startswith("bad-") or code in (
            "overloaded", "deadline_exceeded", "internal",
            "shutting_down",
        )):
            failures.append(f"{rid}: unexpected failure {resp['error']}")
    bad_answers = [
        rid for rid in responses
        if rid.startswith("bad-") and responses[rid].get("ok")
    ]
    if bad_answers:
        failures.append(f"malformed requests accepted: {bad_answers}")
    failures.extend(reader_errors)

    stats = responses.get("final-stats", {}).get("result", {})
    service = stats.get("service", {})
    if service:
        if service.get("requests", 0) < args.requests:
            failures.append(
                f"stats saw only {service.get('requests')} requests"
            )
        flight = service.get("singleflight", {})
        print(
            f"requests={service.get('requests')} ok={service.get('ok')} "
            f"errors={service.get('errors')} retries={service.get('retries')} "
            f"dedup_hits={flight.get('hits')} tiers={service.get('tiers')} "
            f"breaker={service.get('breaker', {}).get('state')}"
        )
    else:
        failures.append("final stats response missing")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: {len(responses)} responses for {len(expected_ids)} requests "
        f"in {elapsed:.1f}s, clean shutdown (exit 0)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
