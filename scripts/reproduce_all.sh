#!/usr/bin/env bash
# Reproduce everything: tests, property suite, benchmarks, examples.
#
# Usage:  bash scripts/reproduce_all.sh
# Runtime: ~15 minutes on a laptop core (the package and interconnect
# examples dominate).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== unit / integration / property tests =="
python -m pytest tests/

echo "== benchmark harness (regenerates every paper figure) =="
python -m pytest benchmarks/ --benchmark-only
echo "   per-experiment reports: benchmarks/results/*.txt"

echo "== examples =="
for script in quickstart peec_lc sensitivity_analysis macromodel_in_system \
              package_model interconnect_crosstalk; do
    echo "--- examples/${script}.py ---"
    python "examples/${script}.py"
done
