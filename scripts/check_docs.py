"""Docs lint: catch documentation rot before it merges.

Two checks over ``README.md`` and ``docs/*.md``:

1. **Intra-repo markdown links resolve.**  Every ``[text](target)``
   whose target is a relative path (no scheme, no ``#``-only anchor)
   must exist on disk, resolved against the linking file's directory.
   Anchors are stripped before the existence check; external URLs
   (``http://``, ``https://``, ``mailto:``) are ignored.
2. **Documented CLI subcommands exist.**  Every ``repro <word>`` or
   ``python -m repro <word>`` mention inside inline code spans or
   fenced code blocks must name a real subcommand of
   :func:`repro.cli.build_parser` -- so docs cannot advertise commands
   the CLI no longer ships (prose mentions of "the repro package" are
   not scanned).

Exit status is the number of problems found (0 = clean), so CI fails
the build on any rot.  ``--root`` points at an alternate repo root
(the self-test fixture in ``tests/test_docs_lint.py`` uses this).

Usage::

    python scripts/check_docs.py [--root PATH]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

#: [text](target) -- ignores images' leading ! by matching the bracket pair
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: fenced code blocks and inline code spans (scanned for subcommands)
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_SPAN = re.compile(r"`[^`\n]+`")
#: `repro <sub>` / `python -m repro <sub>` inside code text; same-line
#: whitespace only (so python snippets like `import repro\nnet = ...`
#: don't match across lines) and not a `from repro import ...`
_SUBCOMMAND = re.compile(
    r"(?<!from )(?:python[ \t]+-m[ \t]+)?\brepro[ \t]+([a-z][a-z0-9-]*)"
)


def _doc_files(root: pathlib.Path) -> list[pathlib.Path]:
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def check_links(root: pathlib.Path) -> list[str]:
    problems = []
    for path in _doc_files(root):
        text = path.read_text()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            plain = target.split("#", 1)[0]
            if not plain:
                continue
            resolved = (path.parent / plain).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link -> {target}"
                )
    return problems


def cli_subcommands(root: pathlib.Path) -> set[str]:
    """The real subcommand set, read from cli.py.

    Prefers the linted root's own ``src`` tree; a fixture root without
    one (the self-test) falls back to the repo this script ships with,
    so its docs are still checked against a real CLI.
    """
    own_root = pathlib.Path(__file__).resolve().parent.parent
    inserted = []
    for candidate in (root / "src", own_root / "src"):
        if candidate.is_dir() and str(candidate) not in sys.path:
            sys.path.insert(0, str(candidate))
            inserted.append(str(candidate))
    try:
        try:
            from repro.cli import build_parser
        except ImportError:
            return set()

        parser = build_parser()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                return set(action.choices)
        return set()
    finally:
        for path in inserted:
            sys.path.remove(path)


def check_subcommands(root: pathlib.Path, known: set[str]) -> list[str]:
    if not known:  # no CLI in this tree (fixture runs): nothing to check
        return []
    problems = []
    for path in _doc_files(root):
        text = path.read_text()
        code_text = "\n".join(
            m.group(0) for m in _FENCE.finditer(text)
        )
        stripped = _FENCE.sub("", text)
        code_text += "\n" + "\n".join(
            m.group(0) for m in _SPAN.finditer(stripped)
        )
        for match in _SUBCOMMAND.finditer(code_text):
            sub = match.group(1)
            if sub not in known:
                problems.append(
                    f"{path.relative_to(root)}: unknown subcommand "
                    f"'repro {sub}' (cli.py has: {', '.join(sorted(known))})"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repo root to lint (default: this repo)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    problems = check_links(root)
    problems += check_subcommands(root, cli_subcommands(root))
    for problem in problems:
        print(f"docs-lint: {problem}", file=sys.stderr)
    if not problems:
        files = len(_doc_files(root))
        print(f"docs-lint: {files} markdown file(s) clean")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
