"""ABL9 -- PACT pole matching (ref. [11]) vs SyMPVL moment matching.

The paper's introduction lists PACT as the other non-Pade alternative:
"Another approach is PACT, which relies on pole matching".  This
ablation compares the two philosophies on the section-7.3 crosstalk
circuit class:

* PACT is DC-exact by construction and passive by congruence, but
  needs a dense eigendecomposition of the internal block and spends its
  order on global eigenmodes;
* SyMPVL matches moments about the expansion point, concentrating
  accuracy in the analysis band at much lower setup cost.
"""

import time

import numpy as np

import repro
from repro.analysis import Table
from repro.core import pact, sympvl

from _util import save_report


def run_ablation():
    net = repro.coupled_rc_bus(8, 40, driver_resistance=100.0)
    system = repro.assemble_mna(net)
    s = 1j * np.logspace(8, 10.5, 40)
    exact = repro.ac_sweep(system, s).z
    g = system.G.toarray()
    z_dc = system.B.T @ np.linalg.solve(g, system.B)
    p = system.num_ports

    rows = []
    for order in (16, 32, 56):
        t0 = time.perf_counter()
        m_s = sympvl(system, order=order, shift=2e9)
        t_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        m_p = pact(system, order - p)
        t_p = time.perf_counter() - t0
        rows.append((
            order,
            repro.max_relative_error(m_s.impedance(s), exact),
            repro.max_relative_error(m_p.impedance(s), exact),
            repro.max_relative_error(m_s.impedance(1e-2), z_dc),
            repro.max_relative_error(m_p.impedance(1e-2), z_dc),
            t_s,
            t_p,
        ))
    return system, rows


def test_ablation_pact_vs_sympvl(benchmark):
    system, rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = Table(
        f"ABL9: SyMPVL vs PACT on an {system.num_ports}-port RC bus "
        f"(N = {system.size})",
        ["order", "SyMPVL band err", "PACT band err", "SyMPVL DC err",
         "PACT DC err", "SyMPVL s", "PACT s"],
    )
    for row in rows:
        table.row(*row)
    lines = [table.render()]
    lines.append(
        "shape (intro / ref. [11]): PACT is exactly DC-preserving and "
        "passive by congruence; SyMPVL concentrates band accuracy via "
        "moment matching and avoids the dense internal eigensolve"
    )
    save_report("ABL9", "\n".join(lines))

    for order, err_s, err_p, dc_s, dc_p, t_s, t_p in rows:
        # PACT: DC exact at every order
        assert dc_p < 1e-9
        # both converge with order; SyMPVL leads in the band
        assert err_s < err_p
    # both error sequences decrease
    assert rows[-1][1] < rows[0][1]
    assert rows[-1][2] < rows[0][2]
