"""FIG3 + FIG4 -- the 64-pin package model (paper section 7.2).

Regenerates both figures' content from one set of reductions:

* FIG3: voltage transfer, pin 1 external -> pin 1 internal;
* FIG4: voltage transfer, pin 1 external -> (neighboring) pin 2
  internal;

each compared across reduced models of order 48, 64, and 80 against the
exact analysis, exactly the orders the paper plots.

Paper-shape claims checked:
  * errors shrink (weakly) as the order grows 48 -> 64 -> 80;
  * the order-80 model is a near-overlay (sub-dB RMS deviation);
  * the reduction runs through the indefinite (Bunch-Kaufman, J != I)
    path -- general RLC circuits have no stability guarantee, and the
    post-processing (stabilize) must repair any unstable model without
    hurting band accuracy.
"""

import numpy as np

import repro
from repro.analysis import Table, rms_db_error

from _util import save_report

BAND = 2 * np.pi * np.logspace(np.log10(5e7), np.log10(5e9), 90)
SIGMA0 = 2 * np.pi * 1.5e9
ORDERS = (48, 64, 80)


def run_package():
    net = repro.package_model()
    system = repro.assemble_mna(net)
    s = 1j * BAND
    exact = repro.ac_sweep(system, s)
    names = net.port_names
    ext1, int1, int2 = names[0], names[8], names[9]
    h_fig3_exact = exact.voltage_transfer(int1, ext1)
    h_fig4_exact = exact.voltage_transfer(int2, ext1)

    rows = []
    for order in ORDERS:
        model = repro.sympvl(system, order=order, shift=SIGMA0)
        stable = model.is_stable(1e-6)
        repaired = model if stable else repro.stabilize(
            model, band=(float(BAND[0]), float(BAND[-1]))
        )
        reduced = repro.model_sweep(model, s)
        h3 = reduced.voltage_transfer(int1, ext1)
        h4 = reduced.voltage_transfer(int2, ext1)
        repaired_sweep = repro.model_sweep(repaired, s)
        h3_repaired = repaired_sweep.voltage_transfer(int1, ext1)
        rows.append({
            "order": order,
            "fact": model.factorization_method,
            "fig3_rel": repro.max_relative_error(h3, h_fig3_exact),
            "fig3_db": rms_db_error(h3, h_fig3_exact),
            "fig4_rel": repro.max_relative_error(h4, h_fig4_exact),
            "fig4_db": rms_db_error(h4, h_fig4_exact),
            "stable": stable,
            "repaired_stable": repaired.is_stable(1e-6),
            "repaired_fig3_rel": repro.max_relative_error(
                h3_repaired, h_fig3_exact
            ),
        })
    return system, rows


def test_fig3_fig4_package(benchmark):
    system, rows = benchmark.pedantic(run_package, rounds=1, iterations=1)

    table = Table(
        "FIG3/FIG4: package voltage transfers vs exact (0.05-5 GHz)",
        ["order", "FIG3 max rel", "FIG3 RMS dB", "FIG4 max rel",
         "FIG4 RMS dB", "stable", "stabilized ok"],
    )
    for row in rows:
        table.row(row["order"], row["fig3_rel"], row["fig3_db"],
                  row["fig4_rel"], row["fig4_db"], row["stable"],
                  row["repaired_stable"])
    lines = [table.render()]
    lines.append(
        f"system: N = {system.size} MNA unknowns, p = 16 ports, "
        f"factorization: {rows[0]['fact']}"
    )
    lines.append(
        "paper shape: orders 48/64/80 all track the exact curves; the "
        "order-80 model gives an 'almost perfect match' (we read that "
        "as sub-dB RMS); 2000 -> 80 state variables"
    )
    save_report("FIG3_FIG4", "\n".join(lines))

    by_order = {row["order"]: row for row in rows}
    # all plotted orders land on the curve (coarse agreement)
    for row in rows:
        assert row["fig3_rel"] < 0.25
        assert row["fig3_db"] < 1.0
    # order 80 is the near-overlay model for both figures
    assert by_order[80]["fig3_db"] < 0.25
    assert by_order[80]["fig4_db"] < 0.75
    # higher order does not get meaningfully worse (weak monotonicity)
    assert by_order[80]["fig3_rel"] <= 2.0 * by_order[48]["fig3_rel"]
    # the indefinite path was exercised
    assert "bunch-kaufman" in rows[0]["fact"]
    # post-processing always yields a stable model...
    assert all(row["repaired_stable"] for row in rows)
    # ...and the band-aware repair keeps the accuracy loss bounded
    # (near-band artifacts at n = 48 cost a few x; at n = 80 the repair
    # is accuracy-neutral)
    for row in rows:
        assert row["repaired_fig3_rel"] <= 8.0 * row["fig3_rel"] + 1e-6
    assert by_order[80]["repaired_fig3_rel"] <= 2.0 * by_order[80]["fig3_rel"]
