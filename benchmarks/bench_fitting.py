"""FITTING -- vector-fit solver speed and accuracy on tabulated data.

Measures, on an exact Z sweep of the lossy Fig. 2 PEEC testbed:

* wall time of the QR-compressed per-response solver (``solver="fast"``,
  Deschrijver 2008) vs the naive stacked least-squares solver
  (``solver="naive"``) at identical options (threshold: >= 2x), and
* the relaxed-VF fit error of both solvers against the tabulated sweep
  (threshold: <= 1e-8), plus their mutual agreement.

Writes ``benchmarks/BENCH_FITTING.json`` (the CI artifact) plus the
usual human-readable report, and exits nonzero when a threshold is
missed -- this is the fitting smoke gate of ``.github/workflows/ci.yml``.

Usage::

    python benchmarks/bench_fitting.py [--quick] [--json PATH]
"""

from __future__ import annotations

import pathlib
import sys
import time

import numpy as np

import repro
from repro.circuits import GROUND
from repro.fitting import TouchstoneData, vector_fit
from repro.simulation import ac_sweep

from _util import finish, standard_main

SPEEDUP_THRESHOLD = 2.0
FIT_ERROR_THRESHOLD = 1e-8
JSON_PATH = pathlib.Path(__file__).parent / "BENCH_FITTING.json"


def build_table(quick: bool) -> TouchstoneData:
    """Exact Z sweep of the lossy Fig. 2 PEEC two-port (the same
    construction as the committed ``tests/data/peec30_fig2.s2p``
    golden file, scaled up outside ``--quick``)."""
    n_cells = 30 if quick else 60
    points = 120 if quick else 240
    net = repro.peec_like_lc(n_cells, seed=7)
    net.port("sense", f"p{n_cells}")
    for k in range(n_cells + 1):
        net.resistor(f"Rg{k}", f"p{k}", GROUND, 2.0e3)
    system = repro.assemble_mna(net)
    f = np.logspace(7.5, 9.2, points)
    exact = ac_sweep(system, 1j * 2 * np.pi * f)
    return TouchstoneData(
        frequency_hz=f,
        matrices=exact.z,
        parameter="Z",
        port_names=list(exact.port_names),
    )


def best_of(repeats, fn):
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure(data: TouchstoneData, num_poles: int, repeats: int):
    s = data.s_values
    h = data.in_domain("Z")

    def fit(solver):
        return vector_fit(s, h, num_poles=num_poles, solver=solver)

    fast_s, fast = best_of(repeats, lambda: fit("fast"))
    naive_s, naive = best_of(repeats, lambda: fit("naive"))

    scale = float(np.abs(h).max())
    agreement = float(
        np.abs(fast.matrices(s) - naive.matrices(s)).max() / scale
    )
    return {
        "num_poles": num_poles,
        "points": data.num_points,
        "ports": data.num_ports,
        "fast": {
            "total_s": fast_s,
            "error": fast.report.error,
            "iterations": fast.report.iterations,
        },
        "naive": {
            "total_s": naive_s,
            "error": naive.report.error,
            "iterations": naive.report.iterations,
        },
        "speedup": naive_s / fast_s,
        "fast_vs_naive_rel": agreement,
    }


def run(quick: bool, json_path: pathlib.Path) -> int:
    data = build_table(quick)
    num_poles = 40 if quick else 60
    stats = measure(data, num_poles, repeats=3 if quick else 5)

    checks = {
        "fast_speedup_ge_2x": stats["speedup"] >= SPEEDUP_THRESHOLD,
        "fast_fit_error_le_1e-8": (
            stats["fast"]["error"] <= FIT_ERROR_THRESHOLD
        ),
        "naive_fit_error_le_1e-8": (
            stats["naive"]["error"] <= FIT_ERROR_THRESHOLD
        ),
        "solvers_agree_1e-6": stats["fast_vs_naive_rel"] <= 1e-6,
    }
    payload = {
        "experiment": "FITTING",
        "testbed": (
            f"fig2-peec lossy (p={stats['ports']}, "
            f"m={stats['points']} points)"
        ),
        "quick": quick,
        "thresholds": {
            "speedup": SPEEDUP_THRESHOLD, "error": FIT_ERROR_THRESHOLD,
        },
        "fit": stats,
        "checks": checks,
        "pass": all(checks.values()),
    }
    lines = [
        "FITTING: fast vs naive vector-fit solver (lossy Fig. 2 sweep)",
        f"  table: p = {stats['ports']}, m = {stats['points']} points, "
        f"n = {stats['num_poles']} poles"
        + (" [quick]" if quick else ""),
        f"  fast:  {stats['fast']['total_s'] * 1e3:8.1f} ms, "
        f"error {stats['fast']['error']:.2e} "
        f"({stats['fast']['iterations']} iterations)",
        f"  naive: {stats['naive']['total_s'] * 1e3:8.1f} ms, "
        f"error {stats['naive']['error']:.2e} "
        f"({stats['naive']['iterations']} iterations)",
        f"  solver speedup: {stats['speedup']:.1f}x "
        f"(threshold {SPEEDUP_THRESHOLD:.0f}x)",
        f"  fast-vs-naive rel difference: "
        f"{stats['fast_vs_naive_rel']:.2e}",
    ]
    return finish("FITTING", lines, payload, json_path)


main = standard_main(
    run, default_json=JSON_PATH, description=__doc__.split("\n")[0]
)


if __name__ == "__main__":
    sys.exit(main())
