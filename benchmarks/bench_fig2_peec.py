"""FIG2 -- the PEEC circuit transfer function (paper section 7.1, Fig. 2).

Regenerates the figure's content: the exact LC two-port response over
the resonance-rich band, overlaid with the SyMPVL matrix-Pade
approximant at order n = 50 (the paper's "good match") and n = 56
("running the algorithm 6 more iterations results in a perfect match").

Paper-shape claims checked:
  * G is singular, so the eq.-26 frequency shift is required;
  * the reduction is stable and passive at every order (LC case);
  * n = 50 tracks the response; n = 50 + 6 is a near-perfect match.
"""

import numpy as np

import repro
from repro.analysis import Table
from repro.circuits.mna import lc_inductor_current_output, with_output_columns

from _util import save_report

N_CELLS = 200
BAND = np.linspace(1.5e9, 4.0e10, 160)  # rad/s


def build_two_port():
    net = repro.peec_like_lc(N_CELLS)
    system = repro.assemble_mna(net)
    mid = f"L{len(net.inductors) // 2}"
    column = lc_inductor_current_output(net, mid)
    return with_output_columns(system, column, [f"i({mid})"])


def run_fig2():
    system = build_two_port()
    s = 1j * BAND
    exact = repro.ac_sweep(system, s)
    rows = []
    series = {}
    for order in (20, 50, 56):
        model = repro.sympvl(system, order=order)
        reduced = repro.model_sweep(model, s)
        err = repro.frequency_error(reduced, exact)
        rows.append(
            (order, err["max_rel"], err["rms_db"], model.is_stable(1e-6),
             repro.certify(model).certified)
        )
        series[order] = reduced
    return system, exact, rows, series


def test_fig2_peec(benchmark):
    system, exact, rows, series = benchmark.pedantic(
        run_fig2, rounds=1, iterations=1
    )

    table = Table(
        "FIG2: PEEC LC two-port, exact vs SyMPVL (band 0.24-6.4 GHz)",
        ["order", "max rel err", "RMS dB err", "stable", "passive cert"],
    )
    for row in rows:
        table.row(*row)
    lines = [table.render()]
    lines.append(
        f"system: N = {system.size} LC nodal unknowns, p = 2 "
        "(drive node + inductor-current output, eq. 25)"
    )
    lines.append(
        "paper shape: n = 50 'good match', n = 56 'perfect match'; "
        "LC reduction guaranteed stable & passive"
    )
    save_report("FIG2", "\n".join(lines))

    by_order = {row[0]: row for row in rows}
    # n = 50 is a good match, n = 56 near-perfect, and the improvement
    # from 20 -> 50 -> 56 is monotone (who-wins shape of Fig. 2)
    assert by_order[20][1] > by_order[50][1] > by_order[56][1]
    assert by_order[50][1] < 0.1
    assert by_order[56][1] < 1e-3
    # stability/passivity guaranteed at every order (section 5)
    assert all(row[3] and row[4] for row in rows)
