"""ABL5 -- deflation in the block-Lanczos process (section 4).

The paper stresses that a multi-start Lanczos process must deflate
linearly dependent vectors.  This ablation constructs port
configurations with exactly dependent and nearly dependent starting
blocks, confirms the algorithm deflates (reporting the events), and --
the important part -- that the deflated models remain correct and keep
the moment-matching property, with q(n) *exceeding* the generic
2*floor(n/p) bound ("q(n) > 2 floor(n/p) if, and only if, deflation
occurs").
"""

import numpy as np

import repro
from repro.analysis import Table
from repro.core import exact_moments, moment_match_count

from _util import save_report


def duplicated_port_system():
    net = repro.rc_ladder(40)
    net.resistor("Rg", "n41", "0", 1.0e3)
    net.port("dup", "n1")  # exactly dependent on port "in"
    return repro.assemble_mna(net)


def near_duplicate_system():
    net = repro.rc_ladder(40)
    net.resistor("Rg", "n41", "0", 1.0e3)
    net.resistor("Rtiny", "n1", "nx", 1e-3)  # nearly shorted neighbor node
    net.capacitor("Cx", "nx", "0", 1e-18)
    net.port("near", "nx")
    return repro.assemble_mna(net)


def full_order_system():
    # order request beyond N: the process must stop at n = N with an
    # exact model
    net = repro.rc_ladder(24, port_at_far_end=True)
    net.resistor("Rg", "n25", "0", 1.0e3)
    return repro.assemble_mna(net)


def run_ablation():
    rows = []
    s = 1j * np.logspace(7, 10, 30)

    for name, system, order in (
        ("duplicate port", duplicated_port_system(), 12),
        ("near-duplicate port", near_duplicate_system(), 12),
        ("order beyond N", full_order_system(), 60),
    ):
        model = repro.sympvl(system, order=order, shift=1e8)
        lanczos = model.metadata["lanczos"]
        exact = repro.ac_sweep(system, s)
        err = repro.max_relative_error(model.impedance(s), exact.z)
        generic_q = 2 * (model.order // system.num_ports)
        moments = exact_moments(system, 2 * model.order, model.sigma0)
        matched = moment_match_count(
            model.moments(2 * model.order), moments, rtol=1e-5
        )
        rows.append((
            name, system.num_ports, model.order, len(lanczos.deflations),
            lanczos.exhausted, generic_q, matched, err,
        ))
    return rows


def test_ablation_deflation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = Table(
        "ABL5: deflation behavior and the moment bound q(n)",
        ["case", "p", "n", "deflations", "exhausted",
         "generic 2*floor(n/p)", "moments matched", "freq err"],
    )
    for row in rows:
        table.row(*row)
    lines = [table.render()]
    lines.append(
        "paper shape (sec. 3.2/4): dependent starting vectors are "
        "deflated; q(n) > 2*floor(n/p) exactly when deflation occurs; "
        "the model stays accurate"
    )
    save_report("ABL5", "\n".join(lines))

    dup = rows[0]
    assert dup[3] >= 1  # the duplicate column deflated
    assert dup[6] > dup[5]  # q(n) exceeds the generic bound
    assert dup[7] < 1e-4  # and the model is still accurate

    full = rows[2]
    assert full[2] == 25  # clipped to N = 25 unknowns...
    assert full[7] < 1e-6  # ...where the model is exact
