"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper's evaluation,
prints the series it produced, and also writes them to
``benchmarks/results/<experiment>.txt`` so the numbers survive pytest's
output capturing and can be pasted into EXPERIMENTS.md.

The CI smoke jobs additionally consume a ``BENCH_<NAME>.json`` artifact
per benchmark, with a ``checks`` dict of named boolean gates and an
overall ``pass``; :func:`finish` and :func:`standard_main` factor that
shared emit/argparse boilerplate out of the individual ``bench_*.py``
scripts.
"""

from __future__ import annotations

import argparse
import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_report(experiment_id: str, text: str) -> None:
    """Print the report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def write_json(path: pathlib.Path, payload: dict) -> None:
    """Emit the CI artifact (pretty-printed, trailing newline)."""
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def finish(
    experiment_id: str,
    lines: list,
    payload: dict,
    json_path: pathlib.Path,
) -> int:
    """The shared benchmark epilogue.

    Writes ``payload`` (which must carry ``checks`` and ``pass``) to
    ``json_path``, appends the standard checks / artifact-path trailer
    to the human-readable report, saves it, and returns the process
    exit code (nonzero when any gate failed -- CI fails on it).
    """
    write_json(json_path, payload)
    report = list(lines) + [
        f"  checks: {payload['checks']}",
        f"  [json written to {json_path}]",
    ]
    save_report(experiment_id, "\n".join(report))
    return 0 if payload["pass"] else 1


def standard_main(run, *, default_json: pathlib.Path, description: str):
    """Build the standard ``main(argv)`` for a gated benchmark.

    ``run(quick, json_path)`` is the benchmark body; the returned main
    parses the conventional ``--quick`` / ``--json`` flags shared by
    every ``bench_*.py``.
    """

    def main(argv=None) -> int:
        parser = argparse.ArgumentParser(description=description)
        parser.add_argument("--quick", action="store_true",
                            help="smaller testbed (CI smoke job)")
        parser.add_argument("--json", type=pathlib.Path,
                            default=default_json,
                            help=f"output JSON path (default {default_json})")
        args = parser.parse_args(argv)
        return run(args.quick, args.json)

    return main
