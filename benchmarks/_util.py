"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper's evaluation,
prints the series it produced, and also writes them to
``benchmarks/results/<experiment>.txt`` so the numbers survive pytest's
output capturing and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_report(experiment_id: str, text: str) -> None:
    """Print the report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
