"""POOL -- persistent sweep pool and cross-request micro-batching.

Measures, on a MORCIC-scale RC power-grid
(:func:`repro.large_rc_grid`; ~10^5 unknowns in the full run):

* **warm vs cold**: repeated exact sweeps through the persistent pool
  of :mod:`repro.engine.pool` (workers stay up, CSC operands ride
  shared memory once per model, LU factors cached per worker) against
  the per-call ``ProcessPoolExecutor`` baseline that pays pool
  bring-up and full system pickling on every call
  (threshold: warm >= 3x the per-call baseline);
* **batched vs sequential**: N concurrent service sweep requests
  sharing one compiled model merged into a single broadcast evaluation
  by the :class:`repro.service.batching.SweepBatcher` window, against
  the same N requests dispatched one at a time with batching disabled
  (threshold: batched dispatch strictly faster, occupancy > 1);
* **bitwise identity**: the serial reference, cold pool, warm pool,
  shm-disabled (pickle transport), and per-call pool paths must return
  bit-for-bit identical kernels, and batched service responses must
  equal unbatched ones exactly.

Writes ``benchmarks/BENCH_POOL.json`` (the CI artifact) plus the
human-readable report, and exits nonzero when a gate fails -- this is
the ``pool-smoke`` gate of ``.github/workflows/ci.yml`` (which runs
``--quick``: a smaller grid, same checks).

Usage::

    python benchmarks/bench_pool.py [--quick] [--json PATH]
"""

from __future__ import annotations

import asyncio
import pathlib
import sys
import time

import numpy as np

import repro
from repro.engine import pool as engine_pool
from repro.engine.sweep import _per_call_pool_kernel
from repro.simulation.ac import ac_kernel

from _util import finish, standard_main

WARM_SPEEDUP_THRESHOLD = 3.0
JSON_PATH = pathlib.Path(__file__).parent / "BENCH_POOL.json"

#: explicit pool width -- the benchmark measures transport + warm-state
#: cost, not CPU scaling, so it does not defer to the affinity clamp
WORKERS = 2

#: (rows, cols, sigma points, warm repeats)
FULL_SCALE = (317, 316, 4, 3)     # ~1e5 unknowns
QUICK_SCALE = (100, 100, 6, 3)    # ~1e4 unknowns (CI smoke)

#: batching leg: concurrent requests sharing one compiled model; the
#: modest grid keeps per-request dispatch overhead (the cost batching
#: amortizes) visible next to the broadcast evaluation itself
BATCH_REQUESTS = 8
BATCH_POINTS = 500

NETLIST = """* rc ladder (pool benchmark)
R1 1 2 1.0
C1 2 0 1e-9
R2 2 3 2.0
C2 3 0 2e-9
R3 3 4 3.0
C3 4 0 1e-9
.port P1 1 0
.port P2 4 0
"""


def sweep_band(system, points: int) -> np.ndarray:
    """Real sigma grid spread over the grid's dominant time constants."""
    tau = 1.0e3 * 0.2e-12
    w_hi = 200.0 / (tau * system.size)
    return np.logspace(
        np.log10(w_hi) - 3.0, np.log10(w_hi), points
    ).astype(complex)


def measure_pool(rows: int, cols: int, points: int, repeats: int) -> dict:
    system = repro.large_rc_grid(rows, cols)
    sigma = sweep_band(system, points)
    chunks = np.array_split(sigma, WORKERS)

    serial = ac_kernel(system, sigma)

    # per-call baseline: a fresh ProcessPoolExecutor + full system
    # pickle every call (what every sweep paid before the pool)
    percall_times = []
    percall = None
    for _ in range(2):
        start = time.perf_counter()
        parts = _per_call_pool_kernel(system, chunks, WORKERS)
        percall_times.append(time.perf_counter() - start)
        percall = np.concatenate(parts, axis=0)
    percall_s = min(percall_times)

    # persistent pool: cold first call (spawn + publish + factor), then
    # warm repeats (operands + LU factors already cached in workers)
    engine_pool.shutdown_pool()
    engine_pool.configure(persistent=True, use_shm=True, idle_timeout=600.0)
    pool = engine_pool.get_pool()
    start = time.perf_counter()
    cold = pool.eval(system, sigma, workers=WORKERS)
    cold_s = time.perf_counter() - start

    warm_times = []
    warm = None
    for _ in range(repeats):
        start = time.perf_counter()
        warm = pool.eval(system, sigma, workers=WORKERS)
        warm_times.append(time.perf_counter() - start)
    warm_s = min(warm_times)
    pool_state = pool.describe()

    # shm disabled: same pool machinery over the pickle transport
    engine_pool.configure(use_shm=False)
    noshm = engine_pool.get_pool().eval(system, sigma, workers=WORKERS)
    engine_pool.shutdown_pool()

    identity = {
        "serial_vs_percall": bool(np.array_equal(serial, percall)),
        "serial_vs_cold_pool": bool(np.array_equal(serial, cold)),
        "serial_vs_warm_pool": bool(np.array_equal(serial, warm)),
        "serial_vs_shm_off": bool(np.array_equal(serial, noshm)),
    }
    return {
        "nodes": system.size,
        "grid": [rows, cols],
        "nnz_g": int(system.G.nnz),
        "points": points,
        "workers": WORKERS,
        "percall_s": percall_s,
        "cold_pool_s": cold_s,
        "warm_pool_s": warm_s,
        "warm_speedup_vs_percall": percall_s / warm_s,
        "shm_published_bytes": pool_state["published_bytes"],
        "transport": pool_state["transport"],
        "identity": identity,
    }


async def _run_service_leg() -> dict:
    from repro.service import MacromodelService, ServiceConfig

    def request(i: int, *, tag: str, points: int, values: bool) -> dict:
        # distinct grids (same model) so single-flight cannot dedup them
        return {
            "id": f"{tag}-{i}",
            "op": "sweep",
            "params": {
                "netlist": NETLIST,
                "order": 6,
                "band": [1e3 * (1 + i), 1e9],
                "points": points,
                "return_values": values,
            },
        }

    async def warm_model(svc):
        first = await svc.handle(
            request(0, tag="warmup", points=10, values=False)
        )
        assert first["ok"], first

    seq = MacromodelService(ServiceConfig(batch_window_ms=0.0))
    bat = MacromodelService(ServiceConfig(
        batch_window_ms=25.0,
        batch_max_size=BATCH_REQUESTS,
        max_concurrency=BATCH_REQUESTS,
    ))
    await warm_model(seq)
    await warm_model(bat)

    # timing leg (no value payloads, so per-request JSON serialization
    # does not drown the dispatch cost batching amortizes):
    # sequential dispatch with batching off = N engine sweeps back to
    # back; concurrent dispatch with batching on = one broadcast eval
    start = time.perf_counter()
    for i in range(BATCH_REQUESTS):
        response = await seq.handle(
            request(i, tag="seq", points=BATCH_POINTS, values=False)
        )
        assert response["ok"], response
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    bat_responses = await asyncio.gather(*[
        bat.handle(request(i, tag="bat", points=BATCH_POINTS, values=False))
        for i in range(BATCH_REQUESTS)
    ])
    batched_s = time.perf_counter() - start
    for response in bat_responses:
        assert response["ok"], response
    stats = bat.stats()["service"]["batching"]

    # identity leg: full values on a smaller grid, compared exactly
    identical = True
    seq_values = [
        await seq.handle(request(i, tag="seqv", points=200, values=True))
        for i in range(BATCH_REQUESTS)
    ]
    bat_values = await asyncio.gather(*[
        bat.handle(request(i, tag="batv", points=200, values=True))
        for i in range(BATCH_REQUESTS)
    ])
    for left, right in zip(seq_values, bat_values):
        assert left["ok"] and right["ok"], (left, right)
        if (
            left["result"]["z_real"] != right["result"]["z_real"]
            or left["result"]["z_imag"] != right["result"]["z_imag"]
        ):
            identical = False
    await seq.drain()
    await bat.drain()

    max_occupancy = max(
        (int(k) for k in stats["occupancy"]), default=0
    )
    return {
        "requests": BATCH_REQUESTS,
        "points_per_request": BATCH_POINTS,
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "speedup": sequential_s / batched_s,
        "batches": stats["batches"],
        "batched_requests": stats["batched_requests"],
        "max_occupancy": max_occupancy,
        "identical_to_sequential": identical,
    }


def run(quick: bool, json_path: pathlib.Path) -> int:
    rows, cols, points, repeats = QUICK_SCALE if quick else FULL_SCALE
    pool_stats = measure_pool(rows, cols, points, repeats)
    batch_stats = asyncio.run(_run_service_leg())

    checks = {
        "warm_pool_speedup_ge_3x": (
            pool_stats["warm_speedup_vs_percall"] >= WARM_SPEEDUP_THRESHOLD
        ),
        "batched_beats_sequential": (
            batch_stats["batched_s"] < batch_stats["sequential_s"]
        ),
        "batch_occupancy_gt_1": batch_stats["max_occupancy"] > 1,
        "bitwise_identical_all_paths": (
            all(pool_stats["identity"].values())
            and batch_stats["identical_to_sequential"]
        ),
    }
    payload = {
        "experiment": "POOL",
        "quick": quick,
        "thresholds": {"warm_speedup": WARM_SPEEDUP_THRESHOLD},
        "pool": pool_stats,
        "batching": batch_stats,
        "checks": checks,
        "pass": all(checks.values()),
    }
    lines = [
        "POOL: persistent sweep pool + service micro-batching"
        + (" [quick]" if quick else ""),
        f"  grid: {pool_stats['nodes']} nodes "
        f"(nnz(G) = {pool_stats['nnz_g']}), {pool_stats['points']} points, "
        f"{pool_stats['workers']} workers, "
        f"transport {pool_stats['transport']} "
        f"({pool_stats['shm_published_bytes'] / 1e6:.1f} MB published)",
        f"  per-call pool: {pool_stats['percall_s']:.3f} s/sweep "
        "(spawn + pickle every call)",
        f"  persistent:    cold {pool_stats['cold_pool_s']:.3f} s, "
        f"warm {pool_stats['warm_pool_s']:.3f} s",
        f"  warm speedup vs per-call: "
        f"{pool_stats['warm_speedup_vs_percall']:.1f}x "
        f"(threshold {WARM_SPEEDUP_THRESHOLD:.0f}x)",
        f"  batching: {batch_stats['requests']} requests x "
        f"{batch_stats['points_per_request']} points -> "
        f"{batch_stats['batches']} batch(es), "
        f"max occupancy {batch_stats['max_occupancy']}",
        f"  sequential {batch_stats['sequential_s'] * 1e3:.1f} ms, "
        f"batched {batch_stats['batched_s'] * 1e3:.1f} ms "
        f"({batch_stats['speedup']:.1f}x)",
        f"  identity: {pool_stats['identity']} + batched==sequential: "
        f"{batch_stats['identical_to_sequential']}",
    ]
    return finish("POOL", lines, payload, json_path)


main = standard_main(
    run, default_json=JSON_PATH, description=__doc__.split("\n")[0]
)


if __name__ == "__main__":
    sys.exit(main())
