"""ABL6 -- full re-orthogonalization vs the paper's short recurrence.

DESIGN.md section 3 documents one deliberate deviation from Algorithm 1:
the default Lanczos policy re-orthogonalizes against *all* closed
clusters ("full"), where the paper keeps only a short window ("local"),
which is what makes its ``T_n`` banded.  This ablation quantifies the
trade on a real reduction:

* the banded structure of ``T`` in local mode (the paper's selling
  point for storage/stamping);
* the accuracy drift of the local recurrence as the order grows
  (classical Lanczos orthogonality loss);
* the cost difference (operator applications are identical; the
  orthogonalization work differs).
"""

import numpy as np

import repro
from repro.analysis import Table
from repro.core import LanczosOptions, sympvl

from _util import save_report


def bandwidth(matrix: np.ndarray, rtol: float = 1e-10) -> int:
    scale = np.abs(matrix).max()
    band = 0
    n = matrix.shape[0]
    for i in range(n):
        for j in range(n):
            if abs(matrix[i, j]) > rtol * scale:
                band = max(band, abs(i - j))
    return band


def run_ablation():
    net = repro.coupled_rc_bus(6, 40, driver_resistance=100.0)
    system = repro.assemble_mna(net)
    s = 1j * np.logspace(8, 10.5, 40)
    exact = repro.ac_sweep(system, s).z
    rows = []
    for order in (12, 24, 48, 96):
        models = {}
        for policy in ("full", "local"):
            models[policy] = sympvl(
                system, order=order, shift=0.0,
                options=LanczosOptions(reorthogonalize=policy),
            )
        err = {
            policy: repro.max_relative_error(m.impedance(s), exact)
            for policy, m in models.items()
        }
        t_local = models["local"].metadata["lanczos"].t_recurrence
        t_full = models["full"].metadata["lanczos"].t
        rows.append((
            order,
            err["full"],
            err["local"],
            bandwidth(t_full),
            bandwidth(t_local),
            system.num_ports,
        ))
    return rows


def test_ablation_reorthogonalization(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = Table(
        "ABL6: full re-orthogonalization vs the paper's banded recurrence",
        ["order", "err (full)", "err (local)", "T bandwidth (full)",
         "T bandwidth (local)", "p"],
    )
    for row in rows:
        table.row(*row)
    lines = [table.render()]
    lines.append(
        "shape: the local recurrence keeps T banded at ~p+lookahead "
        "(the structure eq. 18 promises); full re-orthogonalization "
        "keeps accuracy at high order where the local recurrence drifts"
    )
    save_report("ABL6", "\n".join(lines))

    p = rows[0][5]
    for order, err_full, err_local, bw_full, bw_local, _ in rows:
        # local mode's recurrence matrix is banded as the paper says
        assert bw_local <= p + LanczosOptions().max_cluster
        # at low-to-moderate order the two policies agree
        if order <= 2 * p:
            assert abs(err_full - err_local) < 10 * max(err_full, 1e-12)
    # full reorthogonalization is at least as accurate at the top order
    top = rows[-1]
    assert top[1] <= 10 * top[2]
