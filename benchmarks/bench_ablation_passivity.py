"""ABL4 -- the section-5 theorems, exercised in bulk.

Stability and passivity of the reduced-order models are *proved* for
the RC, RL, and LC classes; this ablation verifies them empirically
across a sweep of random circuits of every guaranteed class, at every
order, including shifted expansions -- and contrasts with the general
RLC class where the paper makes no guarantee (and where unstable models
genuinely occur, motivating the post-processing remark of section 8).
"""

import numpy as np

import repro
from repro.analysis import Table
from repro.errors import ReductionError

from _util import save_report


def run_ablation():
    counts = {}
    omega = np.logspace(7, 11, 10)
    for kind in ("RC", "RL", "LC", "RLC"):
        total = 0
        stable = 0
        passive = 0
        certified = 0
        for seed in range(12):
            net = repro.random_passive(kind, 14, seed=seed)
            system = repro.assemble_mna(net)
            for order in (2, 5, 9, 13):
                try:
                    model = repro.sympvl(system, order=order)
                except ReductionError:
                    continue
                total += 1
                if model.is_stable(1e-6):
                    stable += 1
                z_scale = max(
                    np.abs(model.impedance((0.05 + 1j) * omega)).max(), 1e-300
                )
                margin = repro.positive_real_margin(
                    model, omega, damping=0.05, real_axis_points=3
                )
                if margin >= -1e-7 * z_scale:
                    passive += 1
                if repro.certify(model, tol=1e-6).certified:
                    certified += 1
        counts[kind] = (total, stable, passive, certified)
    return counts


def test_ablation_passivity_theorems(benchmark):
    counts = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = Table(
        "ABL4: stability/passivity across classes (random circuits x orders)",
        ["class", "models", "stable", "passive (sampled)",
         "certified (algebraic)"],
    )
    for kind, (total, stable, passive, certified) in counts.items():
        table.row(kind, total, stable, passive, certified)
    lines = [table.render()]
    lines.append(
        "paper shape (sec. 5): RC/RL/LC reductions stable & passive at "
        "EVERY order; general RLC has no guarantee (sec. 8 defers to "
        "post-processing)"
    )
    save_report("ABL4", "\n".join(lines))

    for kind in ("RC", "RL", "LC"):
        total, stable, passive, certified = counts[kind]
        assert total > 20
        assert stable == total, f"{kind}: {stable}/{total} stable"
        assert passive == total, f"{kind}: {passive}/{total} passive"
        assert certified == total, f"{kind}: certification failed"
    # the RLC class must NOT be trivially all-stable (otherwise the
    # paper's caveat -- and our post-processing -- would be pointless);
    # with moderate sampling unstable cases are expected but not certain,
    # so only the guarantee direction is asserted strictly above.
    assert counts["RLC"][0] > 20
