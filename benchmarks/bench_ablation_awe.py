"""ABL1 -- explicit moments (AWE) vs Lanczos-based Pade (section 3.1).

The paper's motivating claim: computing Pade approximants from
explicitly generated moments "is inherently numerically unstable ...
this approach can be used only for very moderate values of n, such as
n < 10", while the Lanczos route is stable.  This ablation regenerates
that comparison: error and Hankel conditioning of AWE vs SyPVL as the
order grows on the same one-port circuit.
"""

import numpy as np

import repro
from repro.analysis import Table
from repro.errors import ReductionError

from _util import save_report

ORDERS = (2, 4, 6, 8, 10, 12, 16, 20)


def build_one_port():
    net = repro.rc_ladder(60, resistance=200.0, capacitance=0.5e-12)
    net.resistor("Rg", "n61", "0", 1.0e3)
    return repro.assemble_mna(net)


def run_ablation():
    system = build_one_port()
    s = 1j * np.logspace(7, 10, 60)
    g = system.G
    exact = repro.ac_sweep(system, s).z[:, 0, 0]
    rows = []
    for order in ORDERS:
        lanczos = repro.sypvl(system, order=order, shift=0.0)
        z_l = lanczos.impedance(s)[:, 0, 0]
        err_l = repro.max_relative_error(z_l, exact)
        try:
            moments_model = repro.awe(system, order)
            z_a = moments_model.impedance(s)
            err_a = repro.max_relative_error(z_a, exact)
            cond = moments_model.hankel_condition
            stable_a = moments_model.is_stable()
        except ReductionError:
            err_a, cond, stable_a = float("nan"), float("inf"), False
        rows.append((order, err_l, lanczos.is_stable(), err_a, cond, stable_a))
    return rows


def test_ablation_awe_vs_lanczos(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = Table(
        "ABL1: AWE (explicit moments) vs SyPVL (Lanczos) on a 1-port RC line",
        ["order", "SyPVL err", "SyPVL stable", "AWE err", "Hankel cond",
         "AWE stable"],
    )
    for row in rows:
        table.row(*row)
    lines = [table.render()]
    lines.append(
        "paper shape (sec. 3.1): AWE usable only for n < 10; Hankel "
        "conditioning grows geometrically; Lanczos keeps converging and "
        "stays stable at every order"
    )
    save_report("ABL1", "\n".join(lines))

    by_order = {row[0]: row for row in rows}
    # Lanczos converges monotonically-ish and stays stable
    assert by_order[20][1] < 1e-6
    assert all(row[2] for row in rows)
    # AWE agrees at low order...
    assert by_order[4][3] < 10 * by_order[4][1] + 1e-6
    # ... but its Hankel systems blow up in conditioning,
    cond_growth = by_order[10][4] / by_order[4][4]
    assert cond_growth > 1e6
    # ... and beyond n ~ 10 AWE is unstable or grossly less accurate
    tail = by_order[16]
    assert (not tail[5]) or np.isnan(tail[3]) or tail[3] > 1e3 * tail[1]
