"""ABL8 -- the three synthesis back-ends of paper section 6.

Section 6 states the reduced model can be synthesized as an RLC
topology "which generalizes either the first or the second Cauer
forms", possibly with negative elements.  The library implements three
realizations; this ablation compares them on the same one-port model
and exercises the LC variant:

* Foster (partial fractions): series chain of parallel R-C sections;
* Cauer (continued fraction): series-R / shunt-C ladder;
* state-space congruence (`synthesize_rc`): dense generalized-Cauer
  stamping, the only one that handles multi-ports.

Measured: element counts, round-trip accuracy, and whether the elements
are physical (all positive) for a guaranteed model.
"""

import numpy as np

import repro
from repro.analysis import Table
from repro.synthesis import (
    synthesize_cauer,
    synthesize_foster,
    synthesize_foster_lc,
    synthesize_rc,
)

from _util import save_report


def run_ablation():
    net = repro.rc_ladder(60, resistance=400.0, capacitance=0.3e-12)
    net.resistor("Rg", "n61", "0", 800.0)
    system = repro.assemble_mna(net)
    model = repro.sypvl(system, order=10, shift=0.0)
    s = 1j * np.logspace(6.5, 10, 40)
    z_model = model.impedance(s)[:, 0, 0]

    rows = []
    backends = {
        "foster": lambda: synthesize_foster(model),
        "cauer": lambda: synthesize_cauer(model),
        "state-space": lambda: synthesize_rc(model).netlist,
    }
    for name, build in backends.items():
        synthesized = build()
        stats = synthesized.stats()
        syn_sys = repro.assemble_mna(synthesized)
        z_syn = repro.ac_sweep(syn_sys, s).z[:, 0, 0]
        err = repro.max_relative_error(z_syn, z_model)
        values = [e.value for e in synthesized.resistors]
        values += [e.value for e in synthesized.capacitors]
        rows.append((
            name, stats["nodes"], stats["resistors"], stats["capacitors"],
            err, all(v > 0 for v in values),
        ))

    # the LC variant on a PEEC-style model
    lc_sys = repro.assemble_mna(repro.peec_like_lc(60))
    lc_model = repro.sympvl(lc_sys, order=14)
    lc_net = synthesize_foster_lc(lc_model)
    s_lc = 1j * np.linspace(2e9, 2.5e10, 40)
    z_lc_model = lc_model.impedance(s_lc)[:, 0, 0]
    z_lc_syn = repro.ac_sweep(repro.assemble_mna(lc_net), s_lc).z[:, 0, 0]
    lc_stats = lc_net.stats()
    lc_values = [e.value for e in lc_net.inductors]
    lc_values += [e.value for e in lc_net.capacitors]
    rows.append((
        "foster-LC", lc_stats["nodes"], lc_stats["inductors"],
        lc_stats["capacitors"],
        repro.max_relative_error(z_lc_syn, z_lc_model),
        all(v > 0 for v in lc_values),
    ))
    return rows


def test_ablation_synthesis_backends(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = Table(
        "ABL8: synthesis back-ends (order-10 RC one-port; order-14 LC)",
        ["backend", "nodes", "R (or L)", "C", "round-trip err",
         "all positive"],
    )
    for row in rows:
        table.row(*row)
    lines = [table.render()]
    lines.append(
        "shape (sec. 6): every back-end realizes Z_n exactly; Foster and "
        "Cauer give physical (positive) elements for guaranteed RC/LC "
        "models; the state-space congruence handles multi-ports but "
        "admits negative elements"
    )
    save_report("ABL8", "\n".join(lines))

    by_name = {row[0]: row for row in rows}
    for name in ("foster", "cauer", "state-space"):
        assert by_name[name][4] < 1e-6, name
    assert by_name["foster-LC"][4] < 1e-6
    # guaranteed one-port models synthesize with physical elements
    assert by_name["foster"][5]
    assert by_name["cauer"][5]
    assert by_name["foster-LC"][5]
    # ladder synthesis is the sparsest: n R + n C for order n
    assert by_name["cauer"][2] + by_name["cauer"][3] <= 2 * 10
