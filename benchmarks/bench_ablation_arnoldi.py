"""ABL3 -- block-Arnoldi congruence (ref. [16]) vs SyMPVL.

The paper cites the coordinate-transformed Arnoldi approach of Silveira
et al. as the main non-Pade alternative.  This ablation compares the
two on both circuit classes:

* on *symmetric positive-definite* pencils (RC), one-sided congruence
  coincides with the two-sided projection, so PRIMA-style Arnoldi
  attains the same matrix-Pade accuracy -- an equivalence worth
  documenting;
* on the *indefinite* package (general RLC) both remain usable; the
  congruence model is passive-by-construction while SyMPVL offers the
  banded symmetric reduced matrices and the same Krylov accuracy.

The cost asymmetry is also measured: Arnoldi keeps a dense orthonormal
basis (O(N n^2) orthogonalization work), while the symmetric Lanczos
recurrence is short.
"""

import time

import numpy as np

import repro
from repro.analysis import Table

from _util import save_report


def run_ablation():
    rows = []

    # RC case
    rc_net = repro.coupled_rc_bus(8, 30, driver_resistance=100.0)
    rc = repro.assemble_mna(rc_net)
    s = 1j * np.logspace(8, 10.5, 40)
    exact = repro.ac_sweep(rc, s).z
    for order in (16, 32, 48):
        t0 = time.perf_counter()
        m_l = repro.sympvl(rc, order=order, shift=0.0)
        t_l = time.perf_counter() - t0
        t0 = time.perf_counter()
        m_a = repro.prima(rc, order, sigma0=0.0)
        t_a = time.perf_counter() - t0
        rows.append((
            "RC bus", order,
            repro.max_relative_error(m_l.impedance(s), exact),
            repro.max_relative_error(m_a.impedance(s), exact),
            t_l, t_a, m_a.is_stable(1e-6),
        ))

    # indefinite RLC case (small package)
    pkg_net = repro.package_model(n_pins=16, n_signal=4, n_sections=6)
    pkg = repro.assemble_mna(pkg_net)
    s2 = 1j * 2 * np.pi * np.logspace(8, np.log10(4e9), 40)
    exact2 = repro.ac_sweep(pkg, s2).z
    sigma0 = 2 * np.pi * 1.5e9
    for order in (24, 40, 56):
        t0 = time.perf_counter()
        m_l = repro.sympvl(pkg, order=order, shift=sigma0)
        t_l = time.perf_counter() - t0
        t0 = time.perf_counter()
        m_a = repro.prima(pkg, order, sigma0=sigma0)
        t_a = time.perf_counter() - t0
        rows.append((
            "RLC package", order,
            repro.max_relative_error(m_l.impedance(s2), exact2),
            repro.max_relative_error(m_a.impedance(s2), exact2),
            t_l, t_a, m_a.is_stable(1e-6),
        ))
    return rows


def test_ablation_arnoldi_vs_sympvl(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = Table(
        "ABL3: SyMPVL vs block-Arnoldi congruence (PRIMA-style, ref. [16])",
        ["circuit", "order", "SyMPVL err", "Arnoldi err",
         "SyMPVL s", "Arnoldi s", "Arnoldi stable"],
    )
    for row in rows:
        table.row(*row)
    lines = [table.render()]
    lines.append(
        "shape: on symmetric PSD pencils the two projections agree "
        "(identical subspace + Galerkin); congruence models of PSD "
        "pencils are stable/passive by construction; both converge on "
        "the indefinite package"
    )
    save_report("ABL3", "\n".join(lines))

    rc_rows = [r for r in rows if r[0] == "RC bus"]
    # equivalence on SPD pencils: same accuracy within a small factor
    for row in rc_rows:
        assert row[3] < 10 * row[2] + 1e-9
        assert row[6]  # congruence model stable for PSD pencil
    # both methods converge with order on the package
    pkg_rows = [r for r in rows if r[0] == "RLC package"]
    assert pkg_rows[-1][2] < pkg_rows[0][2]
    assert pkg_rows[-1][3] < pkg_rows[0][3]
