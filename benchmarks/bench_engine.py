"""ENGINE -- compiled evaluation and reduction-cache speedups.

Measures, on the Fig. 2 PEEC testbed (the paper's LC two-port):

* per-point evaluation time of the compiled pole-residue form vs the
  uncompiled per-point dense-solve path (threshold: >= 5x), and
* end-to-end time of a cache-hit repeat reduction vs the cold
  reduction (threshold: >= 10x), for both the in-memory LRU and a
  fresh-process disk hit.

Writes ``benchmarks/BENCH_ENGINE.json`` (the CI artifact) plus the
usual human-readable report, and exits nonzero when a threshold is
missed -- this is the engine smoke gate of ``.github/workflows/ci.yml``.

Usage::

    python benchmarks/bench_engine.py [--quick] [--json PATH]
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

import numpy as np

import repro
from repro.circuits.mna import lc_inductor_current_output, with_output_columns
from repro.engine import CompiledModel, Engine

from _util import finish, standard_main

PER_POINT_THRESHOLD = 5.0
CACHE_THRESHOLD = 10.0
JSON_PATH = pathlib.Path(__file__).parent / "BENCH_ENGINE.json"


def build_testbed(quick: bool):
    """The Fig. 2 PEEC LC two-port (drive node + inductor-current
    output, eq. 25); smaller but same-shaped under ``--quick``."""
    n_cells = 60 if quick else 200
    net = repro.peec_like_lc(n_cells)
    system = repro.assemble_mna(net)
    mid = f"L{len(net.inductors) // 2}"
    column = lc_inductor_current_output(net, mid)
    system = with_output_columns(system, column, [f"i({mid})"])
    order = 24 if quick else 50
    points = 160 if quick else 400
    band = np.linspace(1.5e9, 4.0e10, points)
    return system, order, 1j * band


def best_of(repeats, fn):
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure_eval(system, order, s, repeats):
    model = repro.sympvl(system, order=order)
    sigma = np.atleast_1d(system.transfer.sigma(s))

    direct_s, z_direct = best_of(
        repeats, lambda: model._kernel_direct(sigma)
    )

    compile_start = time.perf_counter()
    compiled = CompiledModel.compile(model)
    compile_s = time.perf_counter() - compile_start
    if not compiled.is_spectral:
        raise SystemExit(
            f"PEEC testbed unexpectedly fell back to direct mode "
            f"({compiled.fallback_reason}); no speedup to measure"
        )
    compiled_s, z_compiled = best_of(repeats, lambda: compiled.kernel(sigma))

    accuracy = float(
        np.abs(z_compiled - z_direct).max() / np.abs(z_direct).max()
    )
    m = sigma.size
    return {
        "order": model.order,
        "points": m,
        "direct": {"total_s": direct_s, "per_point_us": 1e6 * direct_s / m},
        "compiled": {
            "total_s": compiled_s,
            "per_point_us": 1e6 * compiled_s / m,
            "compile_s": compile_s,
            "mode": compiled.mode,
        },
        "speedup_per_point": direct_s / compiled_s,
        "rel_error_vs_direct": accuracy,
    }


def measure_cache(system, order):
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        engine = Engine(cache_dir=tmp)
        cold_start = time.perf_counter()
        engine.reduce(system, order)
        cold_s = time.perf_counter() - cold_start

        warm_start = time.perf_counter()
        engine.reduce(system, order)
        warm_s = time.perf_counter() - warm_start

        fresh = Engine(cache_dir=tmp)  # new session: memory LRU empty
        disk_start = time.perf_counter()
        fresh.reduce(system, order)
        disk_s = time.perf_counter() - disk_start
        disk_hit = fresh.cache.stats.disk_hits == 1

    return {
        "cold_s": cold_s,
        "warm_memory_s": warm_s,
        "warm_disk_s": disk_s,
        "disk_hit": disk_hit,
        "speedup_end_to_end": cold_s / warm_s,
        "speedup_disk": cold_s / disk_s if disk_s > 0 else float("inf"),
    }


def run(quick: bool, json_path: pathlib.Path) -> int:
    system, order, s = build_testbed(quick)
    repeats = 3 if quick else 5
    eval_stats = measure_eval(system, order, s, repeats)
    cache_stats = measure_cache(system, order)

    checks = {
        "per_point_speedup_ge_5x": (
            eval_stats["speedup_per_point"] >= PER_POINT_THRESHOLD
        ),
        "cache_hit_speedup_ge_10x": (
            cache_stats["speedup_end_to_end"] >= CACHE_THRESHOLD
        ),
        "disk_cache_hit": cache_stats["disk_hit"],
        "compiled_matches_direct_1e-10": (
            eval_stats["rel_error_vs_direct"] <= 1e-10
        ),
    }
    payload = {
        "experiment": "ENGINE",
        "testbed": f"fig2-peec (N={system.size}, p={system.num_ports})",
        "quick": quick,
        "thresholds": {
            "per_point": PER_POINT_THRESHOLD, "cache": CACHE_THRESHOLD,
        },
        "eval": eval_stats,
        "cache": cache_stats,
        "checks": checks,
        "pass": all(checks.values()),
    }
    lines = [
        "ENGINE: compiled evaluation vs direct solves (Fig. 2 PEEC testbed)",
        f"  system: N = {system.size}, p = {system.num_ports}, "
        f"n = {eval_stats['order']}, m = {eval_stats['points']} points"
        + (" [quick]" if quick else ""),
        f"  direct:   {eval_stats['direct']['per_point_us']:8.2f} us/point",
        f"  compiled: {eval_stats['compiled']['per_point_us']:8.2f} us/point "
        f"(one-time compile {eval_stats['compiled']['compile_s'] * 1e3:.1f} ms)",
        f"  per-point speedup: {eval_stats['speedup_per_point']:.1f}x "
        f"(threshold {PER_POINT_THRESHOLD:.0f}x)",
        f"  compiled-vs-direct rel error: "
        f"{eval_stats['rel_error_vs_direct']:.2e}",
        f"  cache: cold {cache_stats['cold_s'] * 1e3:.1f} ms, memory hit "
        f"{cache_stats['warm_memory_s'] * 1e3:.3f} ms, disk hit "
        f"{cache_stats['warm_disk_s'] * 1e3:.1f} ms",
        f"  cache-hit end-to-end speedup: "
        f"{cache_stats['speedup_end_to_end']:.0f}x "
        f"(threshold {CACHE_THRESHOLD:.0f}x)",
    ]
    return finish("ENGINE", lines, payload, json_path)


main = standard_main(
    run, default_json=JSON_PATH, description=__doc__.split("\n")[0]
)


if __name__ == "__main__":
    sys.exit(main())
