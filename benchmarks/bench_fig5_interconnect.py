"""FIG5 + TXT-A -- synthesized interconnect in the time domain (sec. 7.3).

Regenerates Figure 5's content: transient waveforms of the full
extracted crosstalk network against the synthesized reduced circuit,
plus the section's textual claims (TXT-A): the element/node counts of
the synthesized circuit and the transient CPU-time reduction
(paper: 1350 -> 34 nodal equations, 36620 C/1355 R -> 170 C/459 R,
132 s -> 2.15 s).

Paper-shape claims checked:
  * the reduction keeps the paper's n = 34 (= 2 x 17 ports) size and
    the synthesized circuit has 34 nodes;
  * full and synthesized waveforms agree closely (and an order-68
    model is waveform-indistinguishable);
  * the synthesized circuit simulates many times faster.
"""

import numpy as np

import repro
from repro.analysis import Table

from _util import save_report

T_GRID = np.linspace(0.0, 2.0e-8, 2001)


def run_fig5():
    net = repro.coupled_rc_bus(driver_resistance=100.0)
    system = repro.assemble_mna(net)
    drives = {"in0": repro.Step(amplitude=1e-3, rise=2e-10)}
    full = repro.transient_ports(system, drives, T_GRID, label="full")

    results = []
    for order in (34, 68):
        model = repro.sympvl(system, order=order, shift=0.0)
        report = repro.synthesize_rc(model, prune_tol=1e-6)
        syn_system = repro.assemble_mna(report.netlist)
        syn = repro.transient_ports(
            syn_system, drives, T_GRID, label=f"synthesized n={order}"
        )
        err = repro.transient_error(syn, full)
        values = [e.value for e in report.netlist.resistors]
        values += [e.value for e in report.netlist.capacitors]
        results.append({
            "order": order,
            "report": report,
            "max_rel": err["max_rel"],
            "cpu": syn.stats["cpu_seconds"],
            "guaranteed": model.guaranteed_stable_passive,
            "negative_elements": sum(1 for v in values if v < 0),
            "bounded": bool(np.all(np.isfinite(syn.outputs))
                            and np.abs(syn.outputs).max()
                            < 100 * max(np.abs(full.outputs).max(), 1e-300)),
        })
    return net, system, full, results


def test_fig5_interconnect(benchmark):
    net, system, full, results = benchmark.pedantic(
        run_fig5, rounds=1, iterations=1
    )
    stats = net.stats()

    table = Table(
        "FIG5/TXT-A: full vs synthesized interconnect transient",
        ["circuit", "nodes", "R", "C", "cpu s", "waveform max rel dev"],
    )
    table.row("full", stats["nodes"], stats["resistors"],
              stats["capacitors"], full.stats["cpu_seconds"], 0.0)
    for res in results:
        rep = res["report"]
        table.row(f"synthesized n={res['order']}", rep.num_nodes,
                  rep.num_resistors, rep.num_capacitors, res["cpu"],
                  res["max_rel"])
    n34 = results[0]
    speedup = full.stats["cpu_seconds"] / max(n34["cpu"], 1e-12)
    lines = [table.render()]
    lines.append(
        f"speedup at n=34: {speedup:.1f}x "
        "(paper: 132 s -> 2.15 s = 61x on 1998 hardware)"
    )
    lines.append(
        "paper counts: full 1350 nodes / 1355 R / 36620 C, synthesized "
        "34 nodes / 459 R / 170 C; waveforms indistinguishable"
    )
    lines.append(
        "note: our synthetic bus couples more densely than the paper's "
        "extracted net, so waveform-indistinguishability needs n = 68; "
        "at the paper's n = 34 the deviation is a few percent"
    )
    lines.append(
        "TXT-B (sec. 6 claim): synthesized circuits contain "
        f"{[r['negative_elements'] for r in results]} negative elements "
        "at n = 34/68 and still simulate stably (model is stable & "
        "passive, so negative values 'will not affect the stability or "
        "the accuracy of the simulation')"
    )
    save_report("FIG5", "\n".join(lines))

    # scale of the full circuit matches the paper's net
    assert 1300 <= stats["nodes"] <= 1400
    assert 30000 <= stats["capacitors"] <= 40000
    # reduction size and synthesized node count match the paper exactly
    assert n34["report"].num_nodes == 34
    # RC reduction carries the section-5 guarantee
    assert all(res["guaranteed"] for res in results)
    # waveforms: close at n=34, indistinguishable at n=68
    assert n34["max_rel"] < 0.10
    assert results[1]["max_rel"] < 0.01
    # the synthesized circuit simulates much faster
    assert speedup > 3.0
    # TXT-B: negative elements occur, yet the simulation stays bounded
    assert any(res["negative_elements"] > 0 for res in results)
    assert all(res["bounded"] for res in results)
