"""ABL7 -- substrate ablation: fill-reducing ordering in the Cholesky.

The SyMPVL pipeline's dominant cost on large RC circuits is the sparse
Cholesky of ``G + sigma0 C``.  This ablation measures what the
from-scratch RCM pre-ordering buys on the paper-scale interconnect
matrix: factor fill (nnz of L), profile, and factorization time, versus
natural ordering.
"""

import time

import numpy as np
import scipy.sparse as sp

import repro
from repro.analysis import Table
from repro.linalg.cholesky import sparse_cholesky
from repro.linalg.ordering import profile, rcm_ordering

from _util import save_report


def run_ablation():
    rows = []
    for label, net in (
        ("rc bus 17x79", repro.coupled_rc_bus(driver_resistance=100.0)),
        ("rc mesh 24x24", repro.rc_mesh(24, 24)),
    ):
        system = repro.assemble_mna(net)
        matrix = sp.csc_matrix(system.shifted_g(2e9))
        perm = rcm_ordering(matrix)
        prof_nat = profile(matrix)
        prof_rcm = profile(matrix, perm)
        timings = {}
        fills = {}
        for order in ("natural", "rcm"):
            started = time.perf_counter()
            chol = sparse_cholesky(matrix, order=order)
            timings[order] = time.perf_counter() - started
            fills[order] = chol.lower.nnz
        rows.append((
            label, matrix.shape[0], matrix.nnz,
            prof_nat, prof_rcm,
            fills["natural"], fills["rcm"],
            timings["natural"], timings["rcm"],
        ))
    return rows


def test_ablation_ordering(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = Table(
        "ABL7: RCM pre-ordering in the from-scratch sparse Cholesky",
        ["matrix", "N", "nnz(A)", "profile nat", "profile rcm",
         "nnz(L) nat", "nnz(L) rcm", "time nat s", "time rcm s"],
    )
    for row in rows:
        table.row(*row)
    lines = [table.render()]
    lines.append(
        "shape: RCM reduces envelope/fill on circuit topologies, which "
        "bounds the factorization work of the SyMPVL setup phase"
    )
    save_report("ABL7", "\n".join(lines))

    for row in rows:
        _, n, nnz_a, prof_nat, prof_rcm, fill_nat, fill_rcm, t_nat, t_rcm = row
        assert prof_rcm <= prof_nat
        assert fill_rcm <= 1.2 * fill_nat  # never meaningfully worse
    # on the long-thin bus the ordering matters a lot
    bus = rows[0]
    assert bus[6] < 0.7 * bus[5] or bus[4] < 0.7 * bus[3]
