"""BACKENDS -- array-backend and dtype-policy sweep throughput.

Measures, on the Fig. 2 PEEC testbed (the paper's LC two-port), the
compiled pole-residue sweep through the array-backend layer
(:mod:`repro.backends`):

* NumPy float64 (the reference path; must be bit-identical to calling
  the compiled kernel without a backend handle),
* NumPy float32 (the probe-verified serving mode: what matters is not
  the raw reduced-precision error -- the lossless LC testbed has
  undamped resonance peaks where complex64 cancellation is intrinsic --
  but that the :func:`verify_precision` gate's verdict is *consistent*
  with the full-grid error, and that whatever the Engine actually
  serves at ``dtype=float32`` stays within tolerance because the gate
  falls back to float64 on rejection), and
* every optional backend (CuPy, torch) that imports and passes its
  capability probe, at both precisions.  Missing backends are reported
  as skipped, never as failures -- CI runs this on a CPU-only box.

Writes ``benchmarks/BENCH_BACKENDS.json`` (the CI artifact) plus the
usual human-readable report, and exits nonzero when a correctness
check fails.  Timing numbers are informational: relative backend speed
is hardware-dependent, so no throughput threshold is enforced.

Usage::

    python benchmarks/bench_backends.py [--quick] [--json PATH]
"""

from __future__ import annotations

import pathlib
import sys
import time

import numpy as np

import repro
from repro.backends import available_backends, get_backend, resolve_dtype
from repro.circuits.mna import lc_inductor_current_output, with_output_columns
from repro.engine import CompiledModel
from repro.engine.sweep import PRECISION_PROBE_TOL, verify_precision

from _util import finish, standard_main

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_BACKENDS.json"


def build_testbed(quick: bool):
    """The Fig. 2 PEEC LC two-port (drive node + inductor-current
    output, eq. 25); smaller but same-shaped under ``--quick``."""
    n_cells = 60 if quick else 200
    net = repro.peec_like_lc(n_cells)
    system = repro.assemble_mna(net)
    mid = f"L{len(net.inductors) // 2}"
    column = lc_inductor_current_output(net, mid)
    system = with_output_columns(system, column, [f"i({mid})"])
    order = 24 if quick else 50
    points = 2000 if quick else 20000
    band = np.linspace(1.5e9, 4.0e10, points)
    return system, order, 1j * band


def best_of(repeats, fn):
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure_backend(compiled, s, name, dtype, repeats):
    """One (backend, dtype) cell: wall time + error vs the reference."""
    xp = get_backend(name)
    policy = resolve_dtype(dtype)

    def evaluate():
        z = compiled.impedance(s, backend=xp, dtype=policy)
        xp.synchronize()
        return z

    evaluate()  # warm-up: device transfer + cached backend arrays
    total_s, z = best_of(repeats, evaluate)
    return total_s, z


def run(quick: bool, json_path: pathlib.Path) -> int:
    system, order, s = build_testbed(quick)
    model = repro.sympvl(system, order=order)
    compiled = CompiledModel.compile(model)
    repeats = 3 if quick else 5
    m = s.size

    # the pre-abstraction reference: no backend handle at all
    ref_s, z_ref = best_of(repeats, lambda: compiled.impedance(s))
    scale = float(np.abs(z_ref).max())

    availability = available_backends()
    cells = []
    for name, reason in availability.items():
        if reason is not None:
            cells.append({
                "backend": name, "skipped": True, "reason": reason,
            })
            continue
        for dtype in ("float64", "float32"):
            total_s, z = measure_backend(compiled, s, name, dtype, repeats)
            error = float(np.abs(z - z_ref).max() / scale)
            cell = {
                "backend": name,
                "dtype": dtype,
                "skipped": False,
                "total_s": total_s,
                "per_point_us": 1e6 * total_s / m,
                "throughput_mpts_per_s": m / total_s / 1e6,
                "rel_error_vs_float64": error,
                "bit_identical": bool(np.array_equal(z, z_ref)),
            }
            if dtype == "float32":
                accepted, probe_error = verify_precision(
                    compiled, s, backend=name, dtype=dtype
                )
                cell["probe_accepted"] = accepted
                cell["probe_error"] = probe_error
            cells.append(cell)

    by_key = {
        (c["backend"], c.get("dtype")): c for c in cells if not c["skipped"]
    }
    numpy64 = by_key[("numpy", "float64")]
    numpy32 = by_key[("numpy", "float32")]

    # the serving contract: sweep through the Engine gate at float32 and
    # check what is actually served (accepted downgrade OR float64
    # fallback) against the reference
    from repro.engine import Engine
    from repro.robustness.health import HealthMonitor

    monitor = HealthMonitor()
    gated_engine = Engine(dtype="float32", monitor=monitor)
    served = gated_engine.sweep(compiled, s).z
    served_error = float(np.abs(served - z_ref).max() / scale)
    precision_events = [
        e for e in monitor.events if e.category == "engine.precision"
    ]
    gate = {
        "served_dtype": str(served.dtype),
        "served_rel_error": served_error,
        "rejections": gated_engine.stats()["precision_rejections"],
        "events": [dict(e.data) for e in precision_events],
    }

    checks = {
        "numpy_float64_bit_identical": numpy64["bit_identical"],
        # accepted => the full grid really is close (10x margin for the
        # stretch between probe points); rejected => it really is not
        "numpy_float32_probe_consistent": (
            numpy32["rel_error_vs_float64"] <= 10 * PRECISION_PROBE_TOL
            if numpy32["probe_accepted"]
            else numpy32["rel_error_vs_float64"] > PRECISION_PROBE_TOL
        ),
        "served_float32_within_tol": served_error <= PRECISION_PROBE_TOL,
        "engine_precision_event_emitted": len(precision_events) > 0,
        "optional_backends_float64_within_tol": all(
            c["rel_error_vs_float64"] <= PRECISION_PROBE_TOL
            for c in cells
            if not c["skipped"] and c["backend"] != "numpy"
            and c["dtype"] == "float64"
        ),
    }
    payload = {
        "experiment": "BACKENDS",
        "testbed": f"fig2-peec (N={system.size}, p={system.num_ports})",
        "quick": quick,
        "points": int(m),
        "order": model.order,
        "probe_tol": PRECISION_PROBE_TOL,
        "reference": {
            "total_s": ref_s, "per_point_us": 1e6 * ref_s / m,
        },
        "availability": availability,
        "cells": cells,
        "gate": gate,
        "checks": checks,
        "pass": all(checks.values()),
    }
    lines = [
        "BACKENDS: array-backend sweep throughput (Fig. 2 PEEC testbed)",
        f"  system: N = {system.size}, p = {system.num_ports}, "
        f"n = {model.order}, m = {m} points"
        + (" [quick]" if quick else ""),
        f"  reference (no backend handle): "
        f"{payload['reference']['per_point_us']:8.3f} us/point",
    ]
    for cell in cells:
        if cell["skipped"]:
            lines.append(
                f"  {cell['backend']:<6} --       skipped ({cell['reason']})"
            )
            continue
        extra = ""
        if cell["dtype"] == "float32":
            verdict = "accepted" if cell["probe_accepted"] else "REJECTED"
            extra = f", probe {verdict} ({cell['probe_error']:.2e})"
        lines.append(
            f"  {cell['backend']:<6} {cell['dtype']:<8} "
            f"{cell['per_point_us']:8.3f} us/point, rel err "
            f"{cell['rel_error_vs_float64']:.2e}{extra}"
        )
    lines += [
        f"  gated float32 serve: dtype {gate['served_dtype']}, rel err "
        f"{gate['served_rel_error']:.2e} "
        f"({gate['rejections']} rejection(s), "
        f"{len(gate['events'])} engine.precision event(s))",
    ]
    return finish("BACKENDS", lines, payload, json_path)


main = standard_main(
    run, default_json=JSON_PATH, description=__doc__.split("\n")[0]
)


if __name__ == "__main__":
    sys.exit(main())
