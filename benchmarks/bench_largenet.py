"""LARGENET -- scalable factorization tier on 10^4..10^6 node grids.

Sweeps RC power-grids built by :func:`repro.large_rc_grid` and
measures, per factorization backend (the seed from-scratch
``sparse-cholesky`` vs the scalable ``superlu`` tier, plus ``cholmod``
when scikit-sparse is installed):

* wall time of the symmetric ``G = M J M^T`` factorization,
* triangular-solve throughput (``solve`` calls per second),
* end-to-end :func:`repro.sympvl` reduction time,
* peak RSS (``ru_maxrss`` high-water mark after each stage), and
* reduced-model accuracy against the exact AC sweep on a Fig.-2-style
  log band scaled to the grid's dominant time constant.

The gate: at the largest scale where both backends run, the scalable
tier must beat the seed backend by >= 5x on factor+reduce wall time,
and its model must match the exact sweep to <= 1e-8 -- this is the
``largenet-smoke`` gate of ``.github/workflows/ci.yml`` (which runs
``--quick``: one 50 x 50 grid, same checks).

Writes ``benchmarks/BENCH_LARGENET.json`` (the CI artifact) plus the
human-readable report, and exits nonzero when a check fails.

Usage::

    python benchmarks/bench_largenet.py [--quick] [--json PATH]
"""

from __future__ import annotations

import pathlib
import resource
import sys
import time

import numpy as np

import repro
from repro.core.sympvl import default_shift
from repro.linalg.factorization import cholmod_available, factor_symmetric

from _util import finish, standard_main

SPEEDUP_THRESHOLD = 5.0
ACCURACY_THRESHOLD = 1.0e-8
JSON_PATH = pathlib.Path(__file__).parent / "BENCH_LARGENET.json"

#: largest node count the seed python sparse-cholesky is asked to
#: factor (it is the slow side of the comparison; past this it would
#: dominate the benchmark's runtime for no extra information)
SEED_LIMIT = 200_000
#: largest node count for the exact reference sweep (one complex sparse
#: solve per frequency point)
EXACT_LIMIT = 200_000

#: (label, rows, cols) grids; ~1e4 / 1e5 / 1e6 unknowns
FULL_SCALES = [
    ("1e4", 100, 100),
    ("1e5", 317, 316),
    ("1e6", 1000, 1000),
]
QUICK_SCALES = [("2.5e3", 50, 50)]

ORDER = 64
QUICK_ORDER = 48
SWEEP_POINTS = 8


def peak_rss_mb() -> float:
    """Process high-water RSS in MB (monotone within one run)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def fig2_band(system, points: int = SWEEP_POINTS) -> np.ndarray:
    """Log band scaled to the grid's slowest mode (3 decades)."""
    # section tau = R*C; the dominant corner-to-corner mode is slower
    # by ~n/200 on these grids (measured), so the band upper edge is
    # w_hi = 200 / (R * C * n)
    tau = 1.0e3 * 0.2e-12
    w_hi = 200.0 / (tau * system.size)
    return 1j * np.logspace(np.log10(w_hi) - 3.0, np.log10(w_hi), points)


def measure_backend(system, method: str, order: int, sigma0: float) -> dict:
    """Factor / solve-throughput / end-to-end reduce for one backend."""
    shifted = (system.G + sigma0 * system.C).tocsc()

    start = time.perf_counter()
    fact = factor_symmetric(shifted, method=method)
    factor_s = time.perf_counter() - start

    rng = np.random.default_rng(0)
    block = rng.standard_normal((system.size, 4))
    solves = 0
    start = time.perf_counter()
    while True:
        fact.solve(block)
        solves += block.shape[1]
        elapsed = time.perf_counter() - start
        if elapsed > 0.5 or solves >= 64:
            break
    solve_throughput = solves / elapsed
    del fact

    start = time.perf_counter()
    model = repro.sympvl(system, order, factor_method=method)
    reduce_s = time.perf_counter() - start

    return {
        "method": method,
        "factor_s": factor_s,
        "solves_per_s": solve_throughput,
        "reduce_s": reduce_s,
        "factor_plus_reduce_s": factor_s + reduce_s,
        "peak_rss_mb": peak_rss_mb(),
        "_model": model,
    }


def run_scale(label: str, rows: int, cols: int, order: int) -> dict:
    start = time.perf_counter()
    system = repro.large_rc_grid(rows, cols)
    assemble_s = time.perf_counter() - start
    sigma0 = default_shift(system)
    s = fig2_band(system)

    exact = None
    if system.size <= EXACT_LIMIT:
        start = time.perf_counter()
        exact = repro.ac_sweep(system, s).z
        exact_s = time.perf_counter() - start
    else:
        exact_s = None
        print(f"  [{label}] exact sweep skipped above {EXACT_LIMIT} nodes; "
              "accuracy not measured at this scale")

    backends = []
    if system.size <= SEED_LIMIT:
        backends.append("sparse-cholesky")
    else:
        print(f"  [{label}] seed sparse-cholesky skipped above "
              f"{SEED_LIMIT} nodes (slow side of the comparison)")
    backends.append("superlu")
    if cholmod_available():
        backends.append("cholmod")

    results = {}
    for method in backends:
        stats = measure_backend(system, method, order, sigma0)
        model = stats.pop("_model")
        if exact is not None:
            reduced = repro.model_sweep(model, s).z
            stats["rel_error"] = float(
                np.abs(reduced - exact).max() / np.abs(exact).max()
            )
        else:
            stats["rel_error"] = None
        results[method] = stats
        print(f"  [{label}] {method}: factor {stats['factor_s']:.3f}s, "
              f"reduce {stats['reduce_s']:.3f}s, "
              f"{stats['solves_per_s']:.0f} solves/s"
              + (f", err {stats['rel_error']:.2e}"
                 if stats["rel_error"] is not None else ""))

    record = {
        "label": label,
        "nodes": system.size,
        "grid": [rows, cols],
        "nnz_g": int(system.G.nnz),
        "order": order,
        "sigma0": sigma0,
        "band_rad_s": [float(abs(s[0])), float(abs(s[-1]))],
        "assemble_s": assemble_s,
        "exact_sweep_s": exact_s,
        "backends": results,
    }
    if "sparse-cholesky" in results:
        seed = results["sparse-cholesky"]["factor_plus_reduce_s"]
        fast = results["superlu"]["factor_plus_reduce_s"]
        record["speedup_vs_seed"] = seed / fast
    return record


def run(quick: bool, json_path: pathlib.Path) -> int:
    scales = QUICK_SCALES if quick else FULL_SCALES
    order = QUICK_ORDER if quick else ORDER
    records = [run_scale(label, r, c, order) for label, r, c in scales]

    # the gate scale: the largest grid where the seed backend ran
    gated = [r for r in records if "speedup_vs_seed" in r]
    gate = max(gated, key=lambda r: r["nodes"])
    accuracy = [
        (r["label"], r["backends"]["superlu"]["rel_error"])
        for r in records
        if r["backends"]["superlu"]["rel_error"] is not None
    ]
    checks = {
        "factor_reduce_speedup_ge_5x": (
            gate["speedup_vs_seed"] >= SPEEDUP_THRESHOLD
        ),
        "superlu_accuracy_le_1e-8": all(
            err <= ACCURACY_THRESHOLD for _, err in accuracy
        ),
    }
    payload = {
        "experiment": "LARGENET",
        "quick": quick,
        "thresholds": {
            "speedup": SPEEDUP_THRESHOLD, "accuracy": ACCURACY_THRESHOLD,
        },
        "gate_scale": gate["label"],
        "cholmod_available": cholmod_available(),
        "scales": [
            {k: v for k, v in r.items()} for r in records
        ],
        "checks": checks,
        "pass": all(checks.values()),
    }
    lines = [
        "LARGENET: scalable factorization tier on RC power-grids"
        + (" [quick]" if quick else ""),
    ]
    for r in records:
        lines.append(
            f"  {r['label']} ({r['nodes']} nodes, nnz(G) = {r['nnz_g']}, "
            f"n = {r['order']}): assemble {r['assemble_s']:.2f} s"
        )
        for method, b in r["backends"].items():
            err = (f", err {b['rel_error']:.2e}"
                   if b["rel_error"] is not None else "")
            lines.append(
                f"    {method:16s} factor {b['factor_s']:8.3f} s  "
                f"reduce {b['reduce_s']:8.3f} s  "
                f"{b['solves_per_s']:8.0f} solves/s  "
                f"RSS {b['peak_rss_mb']:7.0f} MB{err}"
            )
        if "speedup_vs_seed" in r:
            lines.append(
                f"    factor+reduce speedup vs seed: "
                f"{r['speedup_vs_seed']:.1f}x"
            )
    lines += [
        f"  gate ({gate['label']}): speedup "
        f"{gate['speedup_vs_seed']:.1f}x (threshold "
        f"{SPEEDUP_THRESHOLD:.0f}x)",
    ]
    return finish("LARGENET", lines, payload, json_path)


main = standard_main(
    run, default_json=JSON_PATH, description=__doc__.split("\n")[0]
)


if __name__ == "__main__":
    sys.exit(main())
