"""Legacy setup shim: enables `pip install -e . --no-use-pep517` offline.

All project metadata lives in pyproject.toml; this file exists only so
editable installs work in environments without the `wheel` package.
"""

from setuptools import setup

setup()
